package cacheserver

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/cluster"
	"tsp/internal/proto"
	"tsp/internal/repl"
	"tsp/internal/telemetry"
)

// Cluster-node state: slot ownership, the MOVED gate, and live slot
// migration (see internal/cluster for the ring/slot scheme and
// DESIGN.md §13 for the soundness argument).
//
// A cluster node owns a subset of the hash slots. Every keyed request
// is checked against the ownership table under a read lock (the slot
// gate); a request touching an un-owned slot is answered with a MOVED
// redirect instead of being executed. Migration moves one slot to
// another node as "filtered snapshot + filtered log suffix" over the
// follower wire format: the source streams its current copy of the
// slot while still serving writes to it (each such write commits
// locally AND rides the suffix — the dual-write window), then flips
// ownership under the gate's write lock. The write lock is what makes
// the flip sound: holding it excludes every in-flight gated request,
// so the log position captured inside it bounds every write the source
// ever acknowledged for the slot, and streaming through that position
// hands the target a superset of everything acked. Relaxed-tier writes
// are force-flushed inside the same critical section so their overlay
// entries reach the log before the bound is read — migration is not a
// crash, so it is not licensed to lose them.

// Slot ownership states (clusterState.state entries).
const (
	// slotUnowned: not this node's slot; requests get MOVED with the
	// last known owner (or "?" when none was ever learned).
	slotUnowned int32 = iota
	// slotOwned: served normally.
	slotOwned
	// slotImporting: a migration is streaming in; requests get MOVED "?"
	// (retry shortly) until the transfer commits.
	slotImporting
	// slotFrozen: an outbound migration is draining its suffix; requests
	// get MOVED "?" until the handoff commits (then MOVED <target>) or
	// rolls back (then served again).
	slotFrozen
)

// clusterState is a cluster node's slot table and migration machinery.
type clusterState struct {
	// epoch counts ownership flips on this node (starts at 1), the
	// node-local analogue of the ring epoch.
	epoch atomic.Uint64

	// gate is the slot gate: every serveBatch holds it shared around
	// ownership checks and execution; an ownership flip takes it
	// exclusively, which is the migration flip's write barrier.
	gate sync.RWMutex

	// state holds each slot's ownership state (slot* constants).
	state [cluster.NumSlots]atomic.Int32

	// fwdMu guards fwd, the last known owner of each slot this node
	// does not own — the address MOVED redirects carry.
	fwdMu sync.Mutex
	fwd   [cluster.NumSlots]string

	// migMu serializes outbound migrations (one at a time per node).
	migMu sync.Mutex

	tel *telemetry.ClusterStats
}

// startCluster initializes cluster mode when WithClusterSlots was
// given. Called by New after replication starts: cluster nodes need a
// replication log even without followers — the log is what a migration
// streams its suffix from, and forcing mutating groups through the
// drain locks (which exec does whenever replLog is set) is what makes
// log order match commit order.
func (s *Server) startCluster() error {
	if s.cfg.clusterSlots == "" {
		return nil
	}
	slots, err := cluster.ParseSlots(s.cfg.clusterSlots)
	if err != nil {
		return fmt.Errorf("cacheserver: %w", err)
	}
	st := &clusterState{tel: &telemetry.ClusterStats{}}
	st.epoch.Store(1)
	for sl := range slots {
		st.state[sl].Store(slotOwned)
	}
	s.clusterSt = st
	if s.replLog == nil {
		s.replLog = repl.NewLog(s.cfg.replWindow)
		for _, sh := range s.shards {
			sh.replLog = s.replLog
		}
	}
	return nil
}

// checkReq checks every key a request addresses against the slot
// table. It returns the MOVED reply (and true) for the first key in an
// un-owned slot; zrange/zcount carry range bounds, not keys, and pass
// unchecked (they answer from local slots only; the routing tier
// merges across nodes).
func (st *clusterState) checkReq(req *proto.Request) (proto.Reply, bool) {
	switch req.Cmd {
	case proto.CmdGet, proto.CmdSet, proto.CmdIncr,
		proto.CmdZAdd, proto.CmdZGet, proto.CmdZIncr, proto.CmdZDel:
		return st.checkKey(req.KV[0])
	case proto.CmdDelete, proto.CmdMGet:
		for _, k := range req.KV {
			if rep, moved := st.checkKey(k); moved {
				return rep, true
			}
		}
	case proto.CmdMSet:
		for i := 0; i+1 < len(req.KV); i += 2 {
			if rep, moved := st.checkKey(req.KV[i]); moved {
				return rep, true
			}
		}
	}
	return proto.Reply{}, false
}

// checkKey resolves one key's slot against the ownership table.
func (st *clusterState) checkKey(key uint64) (proto.Reply, bool) {
	slot := cluster.SlotOf(key)
	switch st.state[slot].Load() {
	case slotOwned:
		return proto.Reply{}, false
	case slotImporting, slotFrozen:
		st.tel.MovedReplies.Inc()
		return proto.Reply{Kind: proto.KMoved, N: slot, Msg: "?"}, true
	default:
		st.fwdMu.Lock()
		addr := st.fwd[slot]
		st.fwdMu.Unlock()
		if addr == "" {
			addr = "?"
		}
		st.tel.MovedReplies.Inc()
		return proto.Reply{Kind: proto.KMoved, N: slot, Msg: addr}, true
	}
}

// ownedSlots returns the sorted slots currently in state want.
func (st *clusterState) slotsIn(want int32) []int {
	var out []int
	for sl := range st.state {
		if st.state[sl].Load() == want {
			out = append(out, sl)
		}
	}
	return out
}

// serveClusterInfo renders the node's slot table: its epoch, the slots
// it owns (as "self"), transfer states, and the last known owner of
// every slot it has handed off.
func (s *Server) serveClusterInfo() proto.Reply {
	st := s.clusterSt
	if st == nil {
		return proto.Reply{Kind: proto.KErrClient, Msg: notClusterMsg}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CLUSTER epoch %d\r\n", st.epoch.Load())
	if spec := cluster.FormatSlots(st.slotsIn(slotOwned)); spec != "" {
		fmt.Fprintf(&b, "SLOTS %s self\r\n", spec)
	}
	if spec := cluster.FormatSlots(st.slotsIn(slotImporting)); spec != "" {
		fmt.Fprintf(&b, "IMPORTING %s\r\n", spec)
	}
	if spec := cluster.FormatSlots(st.slotsIn(slotFrozen)); spec != "" {
		fmt.Fprintf(&b, "FROZEN %s\r\n", spec)
	}
	st.fwdMu.Lock()
	for sl := 0; sl < cluster.NumSlots; sl++ {
		if st.fwd[sl] != "" && st.state[sl].Load() == slotUnowned {
			fmt.Fprintf(&b, "MOVED %d %s\r\n", sl, st.fwd[sl])
		}
	}
	st.fwdMu.Unlock()
	b.WriteString("END")
	return proto.Reply{Kind: proto.KRaw, Msg: b.String()}
}

// notClusterMsg answers cluster commands on a non-cluster server.
const notClusterMsg = "not a cluster node (start with cluster slots configured)"

// migrateChunk bounds pairs per streamed snapshot frame.
const migrateChunk = 1024

// migrateLagBound is how close the pre-flip catch-up must get to the
// log tip before the flip is taken; the remainder streams inside the
// frozen window.
const migrateLagBound = 64

// serveMigrate executes `migrate <slot> <addr>`: stream the slot to
// addr, then hand ownership off. Runs as a serveBatch sequence point
// with the slot gate NOT held (it takes the gate's write lock itself
// for the flip). Replies "OK MIGRATED <slot> <addr> pairs <n> groups
// <m>" on success; on any failure before the handoff commits, the slot
// rolls back to owned and the error is reported — no acked write has
// left the source's responsibility until the target acknowledged all
// of them.
func (s *Server) serveMigrate(req *proto.Request) proto.Reply {
	st := s.clusterSt
	if st == nil {
		return proto.Reply{Kind: proto.KErrClient, Msg: notClusterMsg}
	}
	slot := int(req.KV[0])
	if slot < 0 || slot >= cluster.NumSlots {
		return proto.Reply{Kind: proto.KErrClient,
			Msg: fmt.Sprintf("slot %d outside 0-%d", slot, cluster.NumSlots-1)}
	}
	target := req.Addr
	st.migMu.Lock()
	defer st.migMu.Unlock()
	if st.state[slot].Load() != slotOwned {
		return proto.Reply{Kind: proto.KErrClient,
			Msg: fmt.Sprintf("slot %d not owned here", slot)}
	}
	pairs, groups, err := s.migrateSlot(st, slot, target)
	if err != nil {
		st.tel.MigrationAborts.Inc()
		return proto.Reply{Kind: proto.KErrServer, Msg: "migrate: " + err.Error()}
	}
	st.tel.MigrationsOut.Inc()
	st.tel.MigratedPairs.Add(uint64(pairs))
	st.tel.MigratedGroups.Add(uint64(groups))
	return proto.Reply{Kind: proto.KRaw,
		Msg: fmt.Sprintf("OK MIGRATED %d %s pairs %d groups %d", slot, target, pairs, groups)}
}

// migrateSlot runs the transfer. Caller holds migMu and has verified
// the slot is owned.
func (s *Server) migrateSlot(st *clusterState, slot int, target string) (npairs, ngroups int, err error) {
	conn, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Handshake: one native command, one OK line. Nothing else is
	// written until the OK arrives, so the target's request decoder has
	// no stream bytes buffered when it splices to frame reading.
	if _, err := fmt.Fprintf(conn, "acceptslot %d\r\n", slot); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(conn, 4<<10)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, 0, fmt.Errorf("awaiting accept: %w", err)
	}
	if !strings.HasPrefix(line, "OK ACCEPT") {
		return 0, 0, fmt.Errorf("target refused: %s", strings.TrimSpace(line))
	}

	mw := repl.NewMigrateWriter(conn)
	gen0, seq0 := s.replLog.Position()
	if err := mw.Begin(gen0, seq0); err != nil {
		return 0, 0, err
	}
	// Session dedup windows first (the follower transfer's order): the
	// records for sessions witnessed by this slot's keys, plus each
	// shard's eviction floor — a retry refused as too old on the source
	// must stay refused on the target.
	for _, sh := range s.shards {
		recs, floor := sh.sessSnapshot()
		kept := recs[:0]
		for _, m := range recs {
			if cluster.SlotOf(m.Key) == slot {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 && floor == 0 {
			continue
		}
		if err := mw.Sessions(kept, floor); err != nil {
			return 0, 0, err
		}
	}
	// The slot's current pairs, shard by shard. Each shard is copied
	// under its lock and filtered after, so the pause is the copy.
	for _, sh := range s.shards {
		all, err := sh.pairs()
		if err != nil {
			return 0, 0, err
		}
		kept := all[:0]
		for _, p := range all {
			if cluster.SlotOf(p.Key) == slot {
				kept = append(kept, p)
			}
		}
		for off := 0; off < len(kept); off += migrateChunk {
			end := off + migrateChunk
			if end > len(kept) {
				end = len(kept)
			}
			if err := mw.Pairs(kept[off:end]); err != nil {
				return 0, 0, err
			}
			npairs += end - off
		}
	}
	// Pre-flip catch-up: stream the log suffix the snapshot window
	// accumulated, without blocking writers, until the gap to the tip
	// is small. Bounded rounds — under a write storm the frozen window
	// absorbs whatever remains.
	seq := seq0
	for round := 0; round < 8; round++ {
		gen, tip := s.replLog.Position()
		if gen != gen0 {
			return npairs, ngroups, fmt.Errorf("log generation changed (crash during migration)")
		}
		if tip-seq <= migrateLagBound {
			break
		}
		var n int
		seq, n, err = s.streamSuffix(mw, slot, gen0, seq, tip)
		ngroups += n
		if err != nil {
			return npairs, ngroups, err
		}
	}

	// The flip. Under the gate's write lock no request is between its
	// ownership check and its commit, so the log tip captured here
	// bounds every write ever acknowledged for the slot. Relaxed
	// overlay entries are force-flushed first — inside the lock no new
	// ones can appear — so the bound covers the relaxed tier too. The
	// slot leaves the lock frozen (MOVED "?"), not handed off: until
	// the target acknowledges the complete stream, the source can still
	// roll back to owned without having lost anything.
	st.gate.Lock()
	for _, sh := range s.shards {
		sh.flushOverlay(s)
	}
	gen1, tip := s.replLog.Position()
	if gen1 != gen0 {
		st.gate.Unlock()
		return npairs, ngroups, fmt.Errorf("log generation changed (crash during migration)")
	}
	suffix := make([]repl.Group, 0, tip-seq)
	for q := seq + 1; q <= tip; q++ {
		g, ok := s.replLog.Get(gen0, q)
		if !ok {
			st.gate.Unlock()
			return npairs, ngroups, fmt.Errorf("migration fell behind the log window")
		}
		if fg, any := filterGroup(g, slot); any {
			suffix = append(suffix, fg)
		}
	}
	st.state[slot].Store(slotFrozen)
	st.gate.Unlock()

	rollback := func() {
		st.state[slot].Store(slotOwned)
	}
	for _, g := range suffix {
		if err := mw.Group(g); err != nil {
			rollback()
			return npairs, ngroups, err
		}
		ngroups++
	}
	if err := mw.End(); err != nil {
		rollback()
		return npairs, ngroups, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		rollback()
		return npairs, ngroups, err
	}
	if _, _, err := repl.ReadAck(br); err != nil {
		rollback()
		return npairs, ngroups, fmt.Errorf("awaiting ack: %w", err)
	}
	// Commit: the target applied and acknowledged everything. Publish
	// the forward address first so no request can observe "unowned, no
	// forward" and answer "?" when the owner is known.
	st.fwdMu.Lock()
	st.fwd[slot] = target
	st.fwdMu.Unlock()
	st.state[slot].Store(slotUnowned)
	st.epoch.Add(1)
	return npairs, ngroups, nil
}

// streamSuffix streams log groups (from, tip], filtered to slot,
// returning the new position and how many groups were sent.
func (s *Server) streamSuffix(mw *repl.MigrateWriter, slot int, gen, from, tip uint64) (uint64, int, error) {
	n := 0
	for q := from + 1; q <= tip; q++ {
		g, ok := s.replLog.Get(gen, q)
		if !ok {
			return q - 1, n, fmt.Errorf("migration fell behind the log window")
		}
		if fg, any := filterGroup(g, slot); any {
			if err := mw.Group(fg); err != nil {
				return q, n, err
			}
			n++
		}
	}
	return tip, n, nil
}

// filterGroup restricts a log group to ops and marks whose keys hash
// to slot, reporting whether anything remains. The filtered group
// copies its slices — the log ring owns the originals.
func filterGroup(g repl.Group, slot int) (repl.Group, bool) {
	out := repl.Group{Seq: g.Seq, Epoch: g.Epoch}
	for _, op := range g.Ops {
		if cluster.SlotOf(op.Key) == slot {
			out.Ops = append(out.Ops, op)
		}
	}
	for _, m := range g.Marks {
		if cluster.SlotOf(m.Key) == slot {
			out.Marks = append(out.Marks, m)
		}
	}
	return out, len(out.Ops) > 0 || len(out.Marks) > 0
}

// beginImport validates and opens an inbound migration for
// `acceptslot <slot>`: the slot flips to importing (requests answer
// MOVED "?" until the transfer commits). Only an unowned slot can be
// accepted — an abort deletes the partial copy, which must never be
// able to destroy a slot this node legitimately serves.
func (s *Server) beginImport(req *proto.Request) (proto.Reply, bool) {
	st := s.clusterSt
	if st == nil {
		return proto.Reply{Kind: proto.KErrClient, Msg: notClusterMsg}, false
	}
	slot := int(req.KV[0])
	if slot < 0 || slot >= cluster.NumSlots {
		return proto.Reply{Kind: proto.KErrClient,
			Msg: fmt.Sprintf("slot %d outside 0-%d", slot, cluster.NumSlots-1)}, false
	}
	if !st.state[slot].CompareAndSwap(slotUnowned, slotImporting) {
		return proto.Reply{Kind: proto.KErrClient,
			Msg: fmt.Sprintf("slot %d not accepting a transfer here", slot)}, false
	}
	return proto.Reply{Kind: proto.KRaw, Msg: fmt.Sprintf("OK ACCEPT %d", slot)}, true
}

// serveImport runs the receiving side of a migration after the OK
// ACCEPT reply was flushed: the connection is spliced from the request
// protocol to the follower wire format and every frame is applied
// through the server's own exec path (the same stacks, Atlas critical
// sections, and telemetry as client traffic). Ownership commits at
// FrameSnapshotEnd; any earlier failure aborts — the slot reverts to
// unowned and the partial copy is deleted, so a later retry (or a
// different owner) starts clean.
func (s *Server) serveImport(conn net.Conn, dec *proto.Decoder, slot int) {
	st := s.clusterSt
	ap := &replApplier{s: s, cs: s.newConnState()}
	defer s.releaseConn(ap.cs)
	mr := repl.NewMigrateReader(io.MultiReader(bytes.NewReader(dec.Leftover()), conn))
	committed := false
	defer func() {
		if !committed {
			st.tel.MigrationAborts.Inc()
			s.abortImport(ap, slot)
		}
	}()
	for {
		msg, err := mr.Next()
		if err != nil {
			return
		}
		switch msg.Frame {
		case repl.FrameSnapshotBegin:
			// Position is informational here: the source's log positions
			// mean nothing to this node's log.
		case repl.FrameSessChunk:
			if err := ap.ApplySessions(msg.Recs, msg.Floor); err != nil {
				return
			}
		case repl.FrameSnapshotChunk:
			if err := ap.ApplyPairs(msg.Pairs); err != nil {
				return
			}
			st.tel.ImportedPairs.Add(uint64(len(msg.Pairs)))
		case repl.FrameGroup:
			if err := ap.ApplyGroup(msg.Group.Ops, msg.Group.Marks); err != nil {
				return
			}
			st.tel.ImportedGroups.Inc()
		case repl.FrameSnapshotEnd:
			// Commit: own the slot, then acknowledge so the source can
			// publish the handoff. The order matters — once the ack is on
			// the wire the source stops serving the slot, so this node
			// must already be answering for it.
			st.state[slot].Store(slotOwned)
			st.fwdMu.Lock()
			st.fwd[slot] = ""
			st.fwdMu.Unlock()
			st.epoch.Add(1)
			st.tel.MigrationsIn.Inc()
			committed = true
			repl.WriteAck(conn, 0, 0)
			return
		}
	}
}

// abortImport reverts a failed inbound migration: the slot returns to
// unowned and every key of the partial copy is deleted, so no stale
// value can be resurrected by a later transfer.
func (s *Server) abortImport(ap *replApplier, slot int) {
	st := s.clusterSt
	for _, sh := range s.shards {
		all, err := sh.pairs()
		if err != nil {
			continue
		}
		var dels []repl.Op
		for _, p := range all {
			if cluster.SlotOf(p.Key) == slot {
				dels = append(dels, repl.Op{Del: true, List: p.List, Key: p.Key})
			}
		}
		if len(dels) > 0 {
			ap.applyOps(dels)
		}
	}
	st.state[slot].Store(slotUnowned)
}
