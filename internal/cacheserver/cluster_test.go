package cacheserver

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsp/internal/cluster"
)

// keysInSlot returns the first n keys whose hash slot is slot.
func keysInSlot(slot, n int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < n; k++ {
		if cluster.SlotOf(k) == slot {
			out = append(out, k)
		}
	}
	return out
}

// keyOutsideSlot returns a key NOT in slot.
func keyOutsideSlot(slot int) uint64 {
	for k := uint64(0); ; k++ {
		if cluster.SlotOf(k) != slot {
			return k
		}
	}
}

// TestClusterMovedRedirect: a node owning half the slots serves its
// half and answers MOVED for the rest — on every keyed command shape,
// while the unkeyed ordered-range commands pass (the routing tier
// merges those across nodes).
func TestClusterMovedRedirect(t *testing.T) {
	s := startServer(t, WithClusterSlots("0-31"))
	c := dial(t, s.Addr().String())

	var owned, moved uint64
	found := 0
	for k := uint64(0); found < 2; k++ {
		if cluster.SlotOf(k) < 32 && found == 0 {
			owned, found = k, 1
		} else if cluster.SlotOf(k) >= 32 && found == 1 {
			moved, found = k, 2
		}
	}
	if got := c.cmd(t, "set %d 100", owned); got != "STORED" {
		t.Fatalf("set owned: %q", got)
	}
	if got := c.cmd(t, "get %d", owned); got != fmt.Sprintf("VALUE %d 100", owned) {
		t.Fatalf("get owned: %q", got)
	}
	wantMoved := fmt.Sprintf("MOVED %d ?", cluster.SlotOf(moved))
	for _, cmd := range []string{
		fmt.Sprintf("get %d", moved),
		fmt.Sprintf("set %d 1", moved),
		fmt.Sprintf("incr %d 1", moved),
		fmt.Sprintf("delete %d", moved),
		fmt.Sprintf("zadd %d 1", moved),
		fmt.Sprintf("zget %d", moved),
		fmt.Sprintf("mget %d %d", owned, moved),
		fmt.Sprintf("mset %d 1 %d 2", owned, moved),
	} {
		if got := c.cmd(t, "%s", cmd); got != wantMoved {
			t.Fatalf("%q -> %q, want %q", cmd, got, wantMoved)
		}
	}
	// A redirected mset must not have applied its owned half.
	if got := c.cmd(t, "get %d", owned); got != fmt.Sprintf("VALUE %d 100", owned) {
		t.Fatalf("owned key changed by a redirected mset: %q", got)
	}
	// zrange/zcount carry range bounds, not keys: answered locally.
	if got := c.cmd(t, "zcount 0 1000000"); got == wantMoved {
		t.Fatalf("zcount was slot-gated: %q", got)
	}

	out := strings.Join(c.lines(t, "cluster"), "\n")
	if !strings.Contains(out, "SLOTS 0-31 self") {
		t.Fatalf("cluster info missing owned slots:\n%s", out)
	}
	if !strings.Contains(out, "CLUSTER epoch 1") {
		t.Fatalf("cluster info missing epoch:\n%s", out)
	}

	// Cluster telemetry shows in stats.
	stats := strings.Join(c.lines(t, "stats"), "\n")
	for _, name := range []string{"cluster_epoch", "cluster_slots_owned", "cluster_moved_replies"} {
		if !strings.Contains(stats, "STAT "+name) {
			t.Fatalf("stats missing %s:\n%s", name, stats)
		}
	}
}

// TestClusterCommandsOffCluster: cluster verbs on a plain server are
// client errors, and a plain server never redirects.
func TestClusterCommandsOffCluster(t *testing.T) {
	s := startServer(t)
	c := dial(t, s.Addr().String())
	for _, cmd := range []string{"cluster", "migrate 3 127.0.0.1:1", "acceptslot 3"} {
		if got := c.cmd(t, "%s", cmd); !strings.HasPrefix(got, "CLIENT_ERROR") {
			t.Fatalf("%q on non-cluster server: %q", cmd, got)
		}
	}
	if got := c.cmd(t, "set 1 100"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
}

// TestClusterMigrateMovesSlot is the handoff acceptance test: data,
// ordered-list entries, and session dedup state all move; the source
// redirects with the target's address; exactly-once replay holds on
// the target.
func TestClusterMigrateMovesSlot(t *testing.T) {
	src := startServer(t, WithClusterSlots("all"))
	dst := startServer(t, WithClusterSlots("none"))
	c := dial(t, src.Addr().String())

	slot := cluster.SlotOf(12345)
	keys := keysInSlot(slot, 20)
	other := keyOutsideSlot(slot)

	for i, k := range keys {
		if got := c.cmd(t, "set %d %d", k, 1000+i); got != "STORED" {
			t.Fatalf("set %d: %q", k, got)
		}
	}
	// Ordered-list entries in the slot move too.
	if got := c.cmd(t, "zadd %d 777", keys[0]); got != "STORED" {
		t.Fatalf("zadd: %q", got)
	}
	if got := c.cmd(t, "set %d 42", other); got != "STORED" {
		t.Fatalf("set other: %q", got)
	}
	// A detectable op in the slot: its dedup record must migrate.
	sess := dial(t, src.Addr().String())
	if got := sess.cmd(t, "session 77"); got != "OK SESSION 77" {
		t.Fatalf("session: %q", got)
	}
	if got := sess.cmd(t, "incr %d 5 seq=1", keys[1]); got != strconv.Itoa(1000+1+5) {
		t.Fatalf("sessioned incr: %q", got)
	}

	got := c.cmd(t, "migrate %d %s", slot, dst.Addr().String())
	if !strings.HasPrefix(got, fmt.Sprintf("OK MIGRATED %d %s pairs ", slot, dst.Addr())) {
		t.Fatalf("migrate: %q", got)
	}

	// Source: redirects with the target's address now.
	wantMoved := fmt.Sprintf("MOVED %d %s", slot, dst.Addr())
	if got := c.cmd(t, "get %d", keys[0]); got != wantMoved {
		t.Fatalf("get on source after migrate: %q, want %q", got, wantMoved)
	}
	// Other slots still served by the source.
	if got := c.cmd(t, "get %d", other); got != fmt.Sprintf("VALUE %d 42", other) {
		t.Fatalf("unmigrated key on source: %q", got)
	}

	// Target: serves the slot's data, redirects everything else.
	d := dial(t, dst.Addr().String())
	for i, k := range keys {
		want := fmt.Sprintf("VALUE %d %d", k, 1000+i)
		if k == keys[1] {
			want = fmt.Sprintf("VALUE %d %d", k, 1000+1+5)
		}
		if got := d.cmd(t, "get %d", k); got != want {
			t.Fatalf("get %d on target: %q, want %q", k, got, want)
		}
	}
	if got := d.cmd(t, "zget %d", keys[0]); got != fmt.Sprintf("VALUE %d 777", keys[0]) {
		t.Fatalf("zget on target: %q", got)
	}
	if got := d.cmd(t, "get %d", other); got != fmt.Sprintf("MOVED %d ?", cluster.SlotOf(other)) {
		t.Fatalf("unowned key on target: %q", got)
	}

	// Exactly-once: replaying the detectable op on the target returns
	// the recorded ack instead of re-applying.
	dsess := dial(t, dst.Addr().String())
	dsess.cmd(t, "session 77")
	if got := dsess.cmd(t, "incr %d 5 seq=1", keys[1]); got != strconv.Itoa(1000+1+5) {
		t.Fatalf("replay on target: %q (re-applied?)", got)
	}
	if got := d.cmd(t, "get %d", keys[1]); got != fmt.Sprintf("VALUE %d %d", keys[1], 1000+1+5) {
		t.Fatalf("value after replay: %q", got)
	}

	// Node epochs bumped on both sides; cluster info reflects the move.
	srcInfo := strings.Join(c.lines(t, "cluster"), "\n")
	if !strings.Contains(srcInfo, fmt.Sprintf("MOVED %d %s", slot, dst.Addr())) {
		t.Fatalf("source cluster info missing forward:\n%s", srcInfo)
	}
	dstInfo := strings.Join(d.lines(t, "cluster"), "\n")
	if !strings.Contains(dstInfo, fmt.Sprintf("SLOTS %d %s", slot, "self")) &&
		!strings.Contains(dstInfo, "self") {
		t.Fatalf("target cluster info missing slot:\n%s", dstInfo)
	}

	if err := src.VerifyAll(); err != nil {
		t.Fatalf("source verify: %v", err)
	}
	if err := dst.VerifyAll(); err != nil {
		t.Fatalf("target verify: %v", err)
	}
}

// TestClusterMigrateUnderLoad: writers hammer a slot (durable and
// relaxed tiers) right through its migration. Every acknowledged
// increment must survive the handoff — the final value on the target
// equals the count of acks the writers collected. This is Eq 1
// (committed writes survive) applied to the migration flip.
func TestClusterMigrateUnderLoad(t *testing.T) {
	src := startServer(t, WithClusterSlots("all"))
	dst := startServer(t, WithClusterSlots("none"))

	key := uint64(999)
	slot := cluster.SlotOf(key)

	var acked atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tier := ""
			if w%2 == 1 {
				tier = " relaxed"
			}
			c := dial(t, src.Addr().String())
			for {
				select {
				case <-stop:
					return
				default:
				}
				line := c.cmd(t, "incr %d 1%s", key, tier)
				fields := strings.Fields(line)
				if _, err := strconv.Atoi(fields[0]); err == nil {
					acked.Add(1)
					continue
				}
				if strings.HasPrefix(line, "MOVED") {
					if len(fields) == 3 && fields[2] != "?" {
						c = dial(t, fields[2])
					} else {
						time.Sleep(time.Millisecond)
					}
					continue
				}
				t.Errorf("writer: unexpected reply %q", line)
				return
			}
		}(w)
	}

	// Let the writers build a log suffix, then migrate under them.
	time.Sleep(50 * time.Millisecond)
	admin := dial(t, src.Addr().String())
	got := admin.cmd(t, "migrate %d %s", slot, dst.Addr().String())
	if !strings.HasPrefix(got, "OK MIGRATED") {
		t.Fatalf("migrate under load: %q", got)
	}
	// Keep writing against the new owner for a while, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The relaxed tier's acks are covered by the flip's forced flush;
	// settle the target's epoch clock before reading.
	d := dial(t, dst.Addr().String())
	d.cmd(t, "wait")
	want := fmt.Sprintf("VALUE %d %d", key, acked.Load())
	if got := d.cmd(t, "get %d", key); got != want {
		t.Fatalf("acked-write loss across migration: %q, want %q (%d acks)", got, want, acked.Load())
	}
	if err := src.VerifyAll(); err != nil {
		t.Fatalf("source verify: %v", err)
	}
	if err := dst.VerifyAll(); err != nil {
		t.Fatalf("target verify: %v", err)
	}
}

// TestClusterMigrateFailureRollsBack: a migration that cannot reach
// its target reports the error and leaves the slot owned and serving —
// no acked write has left the source's responsibility.
func TestClusterMigrateFailureRollsBack(t *testing.T) {
	s := startServer(t, WithClusterSlots("all"))
	c := dial(t, s.Addr().String())

	key := uint64(31337)
	slot := cluster.SlotOf(key)
	if got := c.cmd(t, "set %d 100", key); got != "STORED" {
		t.Fatalf("set: %q", got)
	}

	// A port nobody listens on: bind one, then close it.
	dead := startServer(t)
	deadAddr := dead.Addr().String()
	dead.Close()

	if got := c.cmd(t, "migrate %d %s", slot, deadAddr); !strings.HasPrefix(got, "SERVER_ERROR migrate:") {
		t.Fatalf("migrate to dead target: %q", got)
	}
	if got := c.cmd(t, "get %d", key); got != fmt.Sprintf("VALUE %d 100", key) {
		t.Fatalf("slot lost after failed migration: %q", got)
	}
	if got := c.cmd(t, "set %d 101", key); got != "STORED" {
		t.Fatalf("slot read-only after failed migration: %q", got)
	}

	// Grammar and state errors.
	if got := c.cmd(t, "migrate 99 127.0.0.1:1"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad slot: %q", got)
	}
	if got := c.cmd(t, "acceptslot %d", slot); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("acceptslot for an owned slot: %q", got)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestClusterSurvivesCrash: a cluster node's slot table and its data
// survive the crash command; redirects keep working after recovery.
func TestClusterSurvivesCrash(t *testing.T) {
	s := startServer(t, WithClusterSlots("0-31"))
	c := dial(t, s.Addr().String())

	var owned, moved uint64
	found := 0
	for k := uint64(0); found < 2; k++ {
		if cluster.SlotOf(k) < 32 && found == 0 {
			owned, found = k, 1
		} else if cluster.SlotOf(k) >= 32 && found == 1 {
			moved, found = k, 2
		}
	}
	if got := c.cmd(t, "set %d 55", owned); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := c.cmd(t, "crash"); !strings.HasPrefix(got, "OK RECOVERED") {
		t.Fatalf("crash: %q", got)
	}
	if got := c.cmd(t, "get %d", owned); got != fmt.Sprintf("VALUE %d 55", owned) {
		t.Fatalf("owned key after crash: %q", got)
	}
	if got := c.cmd(t, "get %d", moved); got != fmt.Sprintf("MOVED %d ?", cluster.SlotOf(moved)) {
		t.Fatalf("redirect after crash: %q", got)
	}
}
