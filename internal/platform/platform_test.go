package platform

import (
	"strings"
	"testing"

	"tsp/internal/core"
)

func TestAllProfilesWellFormed(t *testing.T) {
	for _, p := range All() {
		if p.Name == "" || p.Description == "" {
			t.Errorf("profile missing identity: %+v", p)
		}
		if p.Threads < 1 {
			t.Errorf("%s: nonpositive thread count", p.Name)
		}
		if p.FlushCost < 0 || p.MissCost < 0 {
			t.Errorf("%s: negative cost", p.Name)
		}
		if !strings.Contains(p.String(), p.Name) {
			t.Errorf("%s: String() does not mention the name: %q", p.Name, p.String())
		}
	}
}

func TestTableOneProfilesMatchPaperSetup(t *testing.T) {
	// Both Table-1 rows ran 8 worker threads.
	for _, p := range All() {
		if p.Threads != 8 {
			t.Errorf("%s: %d threads, the paper used 8", p.Name, p.Threads)
		}
	}
}

func TestServerCostsExceedDesktop(t *testing.T) {
	// The DL580's lower absolute throughput is modeled by pricier
	// memory access; the calibration relies on this ordering.
	d, s := Desktop(), Server()
	if s.MissCost <= d.MissCost {
		t.Errorf("server MissCost %d should exceed desktop %d", s.MissCost, d.MissCost)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"desktop", "server", "unit"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := ByName("mainframe"); err == nil {
		t.Fatal("ByName accepted an unknown profile")
	}
}

func TestProfilesAdmitTSPPlans(t *testing.T) {
	// The Table-1 experiments presume TSP is available on both
	// machines; their hardware descriptions must derive TSP plans for
	// the full failure set the paper discusses.
	req := core.Requirements{
		Tolerate:  []core.Failure{core.ProcessCrash, core.KernelPanic, core.PowerOutage},
		Isolation: core.MutexBased,
	}
	for _, p := range All() {
		plan, err := core.DerivePlan(req, p.Hardware)
		if err != nil {
			t.Fatalf("%s: DerivePlan: %v", p.Name, err)
		}
		if !plan.TSP {
			t.Errorf("%s: hardware does not admit a TSP plan", p.Name)
		}
		if plan.Overhead != core.OverheadLogging {
			t.Errorf("%s: overhead = %v, want logging (Atlas TSP mode)", p.Name, plan.Overhead)
		}
	}
}

func TestUnitProfileDeterministic(t *testing.T) {
	u := Unit()
	if u.FlushCost != 0 || u.MissCost != 0 || u.Evictor.Enabled() {
		t.Errorf("unit profile must be deterministic and cost-free: %+v", u)
	}
}
