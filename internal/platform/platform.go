// Package platform defines named hardware profiles for the simulated
// experiments. The paper's Table 1 reports two machines — an "ENVY
// Phoenix 800" desktop (i7-4770, 8 hardware threads, 32 GB) and a "DL580
// Gen8" server (E7-4890v2, 30 hardware threads per socket, 1.5 TB). The
// absolute speed of the host running this simulation is irrelevant; what
// a profile preserves is the *relative* cost structure that shapes the
// results: how expensive a synchronous cache-line flush is compared to
// ordinary memory operations, how aggressively the cache writes dirty
// lines back on its own, and how many worker threads the experiment
// pins.
package platform

import (
	"fmt"
	"time"

	"tsp/internal/core"
	"tsp/internal/nvm"
)

// Profile is a named simulated machine.
type Profile struct {
	// Name identifies the profile in reports ("desktop", "server").
	Name string

	// Description summarizes the machine the profile stands in for.
	Description string

	// Threads is the worker-thread count the paper used on this machine
	// (8 in both Table 1 rows).
	Threads int

	// FlushCost is the simulated latency of one synchronous cache-line
	// flush, in nvm spin units. It is the knob behind the TSP-vs-non-TSP
	// gap: non-TSP Atlas pays it once per log-record line and once per
	// dirtied data line per OCS.
	FlushCost int

	// MissCost and MissLines parameterize the device's cache-latency
	// model (see nvm.Config): misses spin MissCost, the hot set is
	// MissLines cache lines. The miss/hit asymmetry is what gives
	// pointer-chasing map operations their realistic cost relative to
	// sequential log appends.
	MissCost  int
	MissLines int

	// Evictor models background cache write-back pressure.
	Evictor nvm.EvictorConfig

	// Hardware is the core-package view of the machine, used to derive
	// TSP plans in documentation and the tspplan command.
	Hardware core.Hardware
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s; %d threads, flushCost=%d)", p.Name, p.Description, p.Threads, p.FlushCost)
}

// Desktop models the Table-1 "ENVY Phoenix 800" class machine: fewer
// cores at a higher clock, with a moderately priced flush.
func Desktop() Profile {
	return Profile{
		Name:        "desktop",
		Description: "ENVY Phoenix 800 class: i7-4770 @ 3.4 GHz, 8 HW threads, 32 GB",
		Threads:     8,
		FlushCost:   16,
		MissCost:    700,
		MissLines:   8192,
		Evictor: nvm.EvictorConfig{
			Interval:      200 * time.Microsecond,
			LinesPerSweep: 64,
		},
		Hardware: core.NVRAMMachine(),
	}
}

// Server models the Table-1 "DL580 Gen8" class machine: many slower
// cores and a pricier flush path (larger cache hierarchy, coherence
// across a big socket).
func Server() Profile {
	return Profile{
		Name:        "server",
		Description: "DL580 Gen8 class: E7-4890v2 @ 2.8 GHz, 30 HW threads/socket, 1.5 TB",
		Threads:     8, // the paper pins 8 workers on one socket
		FlushCost:   80,
		MissCost:    2000,
		MissLines:   8192,
		Evictor: nvm.EvictorConfig{
			Interval:      200 * time.Microsecond,
			LinesPerSweep: 64,
		},
		Hardware: core.NVRAMMachine(),
	}
}

// Unit is a profile for unit tests: free flushes, no evictor, fully
// deterministic.
func Unit() Profile {
	return Profile{
		Name:        "unit",
		Description: "deterministic unit-test machine",
		Threads:     4,
		FlushCost:   0,
		Hardware:    core.NVRAMMachine(),
	}
}

// All returns the profiles experiments iterate over.
func All() []Profile { return []Profile{Desktop(), Server()} }

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range append(All(), Unit()) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("platform: unknown profile %q", name)
}
