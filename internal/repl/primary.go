package repl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/telemetry"
)

// snapshotChunkPairs bounds how many pairs the primary packs into one
// FrameSnapshotChunk.
const snapshotChunkPairs = 4096

// PrimaryConfig configures a replication listener.
type PrimaryConfig struct {
	// Log is the bounded replication log the serving process appends
	// committed groups to. Required.
	Log *Log
	// Snapshot streams a full copy of the current state as batches of
	// pairs through emit, returning emit's error if any. The primary
	// captures the log position immediately before calling it; because
	// replicated ops are absolute, the copy may safely include effects
	// committed after that position — replaying them is idempotent.
	// Required.
	Snapshot func(emit func([]Pair) error) error
	// Sessions streams the primary's session dedup window as batches of
	// records (with the evicted-seq floor) through emit during a state
	// transfer, so a promoted follower inherits the exactly-once window.
	// Optional: nil means no session frames are sent.
	Sessions func(emit func([]SessRec, uint64) error) error
	// Tel receives the replication counters and lag histogram. Optional
	// (nil-safe).
	Tel *telemetry.ReplStats
	// OnAck, when set, is invoked after every follower acknowledgement
	// is recorded — the hook `wait repl` barriers hang off: the server
	// parks waiters on a broadcast channel and OnAck re-arms the
	// AckedCount check. Called from ack-reader goroutines; must be cheap
	// and must not call back into the Primary's ack surface. Optional.
	OnAck func()
	// Logf, when set, receives human-readable connection events.
	Logf func(format string, args ...any)
}

// ackPos is one follower's cumulative acknowledged position.
type ackPos struct {
	gen, seq uint64
}

// Primary accepts follower connections and streams the replication log
// to each, serving a full snapshot first whenever a follower's position
// is unusable (wrong generation, behind the retained window, or from a
// previous primary life).
type Primary struct {
	cfg       PrimaryConfig
	ln        net.Listener
	wg        sync.WaitGroup
	closing   atomic.Bool
	followers atomic.Int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// acked holds each connected follower's last acknowledged position,
	// keyed by connection; entries die with the connection, so a
	// follower that vanishes stops counting toward barriers.
	ackMu sync.Mutex
	acked map[net.Conn]ackPos
}

// ListenPrimary starts accepting followers on addr (":0" picks a port).
func ListenPrimary(addr string, cfg PrimaryConfig) (*Primary, error) {
	if cfg.Log == nil || cfg.Snapshot == nil {
		return nil, fmt.Errorf("repl: PrimaryConfig needs Log and Snapshot")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.Tel == nil {
		cfg.Tel = telemetry.NewReplStats()
	}
	p := &Primary{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		acked: make(map[net.Conn]ackPos),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listener's address, for followers to dial.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Followers returns the number of currently connected followers.
func (p *Primary) Followers() int { return int(p.followers.Load()) }

// AckedCount returns how many currently connected followers have
// acknowledged sequence seq or later in generation gen — the predicate
// a `wait repl` barrier polls (re-armed by OnAck) until it reaches the
// required replica count.
func (p *Primary) AckedCount(gen, seq uint64) int {
	p.ackMu.Lock()
	defer p.ackMu.Unlock()
	n := 0
	for _, a := range p.acked {
		if a.gen == gen && a.seq >= seq {
			n++
		}
	}
	return n
}

// Close stops accepting, severs follower connections, and waits for the
// per-connection goroutines to drain. It does not close the Log; the
// owner does that (closing the Log also unblocks streamers).
func (p *Primary) Close() {
	if !p.closing.CompareAndSwap(false, true) {
		return
	}
	p.ln.Close()
	p.connMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connMu.Unlock()
	// Streamers parked in Log.Next re-check the closing flag on wake.
	p.cfg.Log.Wake()
	p.wg.Wait()
}

func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.connMu.Lock()
		if p.closing.Load() {
			p.connMu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go p.serveFollower(conn)
	}
}

// serveFollower drives one follower: handshake, then a loop of
// snapshot-if-needed and group streaming. A second goroutine drains the
// follower's acks and turns them into lag samples.
func (p *Primary) serveFollower(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.connMu.Lock()
		delete(p.conns, conn)
		p.connMu.Unlock()
	}()

	r := bufio.NewReader(conn)
	payload, err := readFrame(r)
	if err != nil || len(payload) == 0 || payload[0] != FrameHello {
		p.logf("repl: follower %s: bad handshake", conn.RemoteAddr())
		return
	}
	gen, seq, err := decodeHello(payload)
	if err != nil {
		p.logf("repl: follower %s: %v", conn.RemoteAddr(), err)
		return
	}
	p.followers.Add(1)
	defer p.followers.Add(-1)
	p.logf("repl: follower %s connected at gen %d seq %d", conn.RemoteAddr(), gen, seq)

	// The streamer below is the connection's only writer; the ack
	// goroutine only reads, so no write lock is needed between them.
	// Close the connection before waiting so the ack reader's blocked
	// read is severed when the streamer exits first (e.g. log closed).
	ackDone := make(chan struct{})
	go p.readAcks(conn, r, ackDone)
	defer func() {
		conn.Close()
		<-ackDone
	}()

	w := bufio.NewWriter(conn)
	for {
		g, st := p.cfg.Log.Next(gen, seq, p.closing.Load)
		switch st {
		case NextClosed:
			return
		case NextSnapshot:
			ngen, nseq, err := p.sendSnapshot(w)
			if err != nil {
				p.logf("repl: follower %s: snapshot: %v", conn.RemoteAddr(), err)
				return
			}
			gen, seq = ngen, nseq
		case NextOK:
			if err := writeFrame(w, encodeGroup(g)); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			p.cfg.Tel.GroupsStreamed.Inc()
			p.cfg.Tel.OpsStreamed.Add(uint64(len(g.Ops)))
			seq = g.Seq
		}
	}
}

// sendSnapshot streams a full state transfer and returns the position
// the follower should resume streaming from.
func (p *Primary) sendSnapshot(w *bufio.Writer) (gen, seq uint64, err error) {
	gen, seq = p.cfg.Log.Position()
	if err := writeFrame(w, encodeSnapshotBegin(gen, seq)); err != nil {
		return 0, 0, err
	}
	var keys uint64
	emit := func(pairs []Pair) error {
		for len(pairs) > 0 {
			n := len(pairs)
			if n > snapshotChunkPairs {
				n = snapshotChunkPairs
			}
			if err := writeFrame(w, encodeSnapshotChunk(pairs[:n])); err != nil {
				return err
			}
			keys += uint64(n)
			pairs = pairs[n:]
		}
		return nil
	}
	if err := p.cfg.Snapshot(emit); err != nil {
		return 0, 0, err
	}
	// Session window frames ride inside the transfer (before the end
	// frame) so the follower commits dedup records and data together: a
	// transfer severed midway leaves it positionless either way.
	if p.cfg.Sessions != nil {
		emitSess := func(recs []SessRec, floor uint64) error {
			for len(recs) > 0 || floor > 0 {
				n := len(recs)
				if n > snapshotChunkPairs {
					n = snapshotChunkPairs
				}
				if err := writeFrame(w, encodeSessChunk(recs[:n], floor)); err != nil {
					return err
				}
				recs = recs[n:]
				floor = 0
			}
			return nil
		}
		if err := p.cfg.Sessions(emitSess); err != nil {
			return 0, 0, err
		}
	}
	if err := writeFrame(w, []byte{FrameSnapshotEnd}); err != nil {
		return 0, 0, err
	}
	if err := w.Flush(); err != nil {
		return 0, 0, err
	}
	p.cfg.Tel.Snapshots.Inc()
	p.cfg.Tel.SnapshotKeys.Add(keys)
	return gen, seq, nil
}

// readAcks drains the follower's cumulative acks, recording each as the
// connection's acknowledged position (the substrate of AckedCount),
// converting it into a lag sample when the acked group is still
// retained, and firing the OnAck hook so parked barriers re-check.
func (p *Primary) readAcks(conn net.Conn, r io.Reader, done chan<- struct{}) {
	defer close(done)
	defer func() {
		// The ack stream died, so this follower can never ack again:
		// drop its entry immediately (the streamer may stay parked in
		// Log.Next long after the connection is gone) and wake waiters —
		// a departed follower only lowers AckedCount, but barriers that
		// can no longer be met should time out against live state, not a
		// ghost.
		p.ackMu.Lock()
		delete(p.acked, conn)
		p.ackMu.Unlock()
		if p.cfg.OnAck != nil {
			p.cfg.OnAck()
		}
	}()
	for {
		payload, err := readFrame(r)
		if err != nil {
			return
		}
		if len(payload) == 0 || payload[0] != FrameAck {
			return
		}
		gen, seq, err := decodeAck(payload)
		if err != nil {
			return
		}
		p.ackMu.Lock()
		p.acked[conn] = ackPos{gen: gen, seq: seq}
		p.ackMu.Unlock()
		p.cfg.Tel.AcksReceived.Inc()
		if at, ok := p.cfg.Log.AppendTime(gen, seq); ok {
			p.cfg.Tel.Lag.ObserveValue(uint64(time.Since(at).Nanoseconds()))
		}
		if p.cfg.OnAck != nil {
			p.cfg.OnAck()
		}
	}
}
