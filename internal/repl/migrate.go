package repl

import (
	"bufio"
	"fmt"
	"io"
)

// Slot-migration streaming: the cluster tier moves one hash slot from
// node to node as "filtered snapshot + filtered log suffix" — exactly
// the state transfer a catching-up follower receives, restricted to the
// keys of one slot. This file exports the frame machinery for that
// reuse: the frames, their encodings, and the length-prefixed transport
// are the follower protocol's, byte for byte, so the migration path
// inherits its bounds checking and its convergence argument (absolute
// resolved effects; replaying any suffix over a snapshot converges).
// Only the session layer differs — who dials whom and how the stream is
// spliced onto a client connection — and that lives in the cache
// server's cluster code.

// MigrateMsg is one decoded frame of a migration stream, tagged by
// Frame. Exactly the fields for that frame type are populated:
// FrameSnapshotBegin fills Gen/Seq, FrameSnapshotChunk fills Pairs,
// FrameSessChunk fills Recs/Floor, FrameGroup fills Group, and
// FrameSnapshotEnd fills nothing (it is the commit point).
type MigrateMsg struct {
	// Frame is the frame type (FrameSnapshotBegin, FrameSnapshotChunk,
	// FrameSessChunk, FrameGroup, or FrameSnapshotEnd).
	Frame byte
	// Gen and Seq carry a FrameSnapshotBegin's log position.
	Gen, Seq uint64
	// Pairs carries a FrameSnapshotChunk's key/value pairs.
	Pairs []Pair
	// Recs and Floor carry a FrameSessChunk's session dedup records and
	// eviction floor.
	Recs  []SessRec
	Floor uint64
	// Group carries a FrameGroup's committed operation group.
	Group Group
}

// MigrateWriter emits a migration stream onto w: Begin, then any mix
// of Sessions/Pairs/Group frames, then End (which flushes). The writer
// buffers; callers that need bytes on the wire mid-stream call Flush.
type MigrateWriter struct {
	w *bufio.Writer
}

// NewMigrateWriter wraps w for migration-stream output.
func NewMigrateWriter(w io.Writer) *MigrateWriter {
	return &MigrateWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

// Begin announces the transfer and the log position the snapshot about
// to stream is consistent through.
func (m *MigrateWriter) Begin(gen, seq uint64) error {
	return writeFrame(m.w, encodeSnapshotBegin(gen, seq))
}

// Sessions emits one session-window chunk (records plus the sending
// shard's eviction floor).
func (m *MigrateWriter) Sessions(recs []SessRec, floor uint64) error {
	return writeFrame(m.w, encodeSessChunk(recs, floor))
}

// Pairs emits one snapshot chunk.
func (m *MigrateWriter) Pairs(pairs []Pair) error {
	return writeFrame(m.w, encodeSnapshotChunk(pairs))
}

// Group emits one committed operation group.
func (m *MigrateWriter) Group(g Group) error {
	return writeFrame(m.w, encodeGroup(g))
}

// End closes the transfer and flushes everything to the wire. The
// receiver commits ownership when it reads this frame.
func (m *MigrateWriter) End() error {
	if err := writeFrame(m.w, []byte{FrameSnapshotEnd}); err != nil {
		return err
	}
	return m.w.Flush()
}

// Flush pushes buffered frames to the wire without ending the stream.
func (m *MigrateWriter) Flush() error { return m.w.Flush() }

// MigrateReader decodes a migration stream from r.
type MigrateReader struct {
	r *bufio.Reader
}

// NewMigrateReader wraps r for migration-stream input.
func NewMigrateReader(r io.Reader) *MigrateReader {
	return &MigrateReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads and decodes one frame. io.EOF surfaces unwrapped when the
// stream ends cleanly between frames.
func (m *MigrateReader) Next() (MigrateMsg, error) {
	payload, err := readFrame(m.r)
	if err != nil {
		return MigrateMsg{}, err
	}
	msg := MigrateMsg{Frame: payload[0]}
	switch payload[0] {
	case FrameSnapshotBegin:
		msg.Gen, msg.Seq, err = decodeSnapshotBegin(payload)
	case FrameSnapshotChunk:
		msg.Pairs, err = decodeSnapshotChunk(payload)
	case FrameSessChunk:
		msg.Recs, msg.Floor, err = decodeSessChunk(payload)
	case FrameGroup:
		msg.Group, err = decodeGroup(payload)
	case FrameSnapshotEnd:
	default:
		err = fmt.Errorf("repl: unexpected frame %d in migration stream", payload[0])
	}
	return msg, err
}

// WriteAck sends the receiver's final acknowledgement of a completed
// migration transfer (unbuffered — one small frame).
func WriteAck(w io.Writer, gen, seq uint64) error {
	return writeFrame(w, encodeAck(gen, seq))
}

// ReadAck reads the final acknowledgement frame.
func ReadAck(r io.Reader) (gen, seq uint64, err error) {
	payload, err := readFrame(r)
	if err != nil {
		return 0, 0, err
	}
	if payload[0] != FrameAck {
		return 0, 0, fmt.Errorf("repl: expected ack frame, got %d", payload[0])
	}
	return decodeAck(payload)
}
