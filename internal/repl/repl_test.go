package repl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsp/internal/telemetry"
)

// source is the primary-side authoritative state the tests stream from:
// a map mutated in lockstep with log appends, exactly how the cache
// server appends each committed batch group.
type source struct {
	mu  sync.Mutex
	m   map[uint64]uint64
	log *Log
}

func newSource(window int) *source {
	return &source{m: make(map[uint64]uint64), log: NewLog(window)}
}

// apply mutates the state and appends the group to the log.
func (s *source) apply(ops ...Op) {
	s.mu.Lock()
	for _, op := range ops {
		if op.Del {
			delete(s.m, op.Key)
		} else {
			s.m[op.Key] = op.Val
		}
	}
	s.mu.Unlock()
	s.log.Append(ops, 0, nil)
}

// snapshot emits the current state, as the primary's Snapshot callback.
func (s *source) snapshot(emit func([]Pair) error) error {
	s.mu.Lock()
	pairs := make([]Pair, 0, len(s.m))
	for k, v := range s.m {
		pairs = append(pairs, Pair{Key: k, Val: v})
	}
	s.mu.Unlock()
	return emit(pairs)
}

// copyState returns a copy of the authoritative map.
func (s *source) copyState() map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// fakeApplier is an in-memory follower state; failPairs makes the next
// N ApplyPairs calls fail to simulate a snapshot transfer dying midway.
type fakeApplier struct {
	mu        sync.Mutex
	m         map[uint64]uint64
	sess      map[uint64]uint64 // session id -> highest inherited seq
	floor     uint64
	failPairs atomic.Int32
}

func newFakeApplier() *fakeApplier {
	return &fakeApplier{m: make(map[uint64]uint64)}
}

func (a *fakeApplier) Wipe() error {
	a.mu.Lock()
	a.m = make(map[uint64]uint64)
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) ApplyPairs(pairs []Pair) error {
	if a.failPairs.Load() > 0 {
		a.failPairs.Add(-1)
		return errFailInjected
	}
	a.mu.Lock()
	for _, p := range pairs {
		a.m[p.Key] = p.Val
	}
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) ApplySessions(recs []SessRec, floor uint64) error {
	a.mu.Lock()
	for _, r := range recs {
		if r.Seq > a.sess[r.Sess] {
			if a.sess == nil {
				a.sess = make(map[uint64]uint64)
			}
			a.sess[r.Sess] = r.Seq
		}
	}
	if floor > a.floor {
		a.floor = floor
	}
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) ApplyGroup(ops []Op, marks []SessRec) error {
	a.mu.Lock()
	for _, op := range ops {
		if op.Del {
			delete(a.m, op.Key)
		} else {
			a.m[op.Key] = op.Val
		}
	}
	for _, m := range marks {
		if a.sess == nil {
			a.sess = make(map[uint64]uint64)
		}
		if m.Seq > a.sess[m.Sess] {
			a.sess[m.Sess] = m.Seq
		}
	}
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) copyState() map[uint64]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint64]uint64, len(a.m))
	for k, v := range a.m {
		out[k] = v
	}
	return out
}

var errFailInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sameState compares two maps.
func sameState(a, b map[uint64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func startPrimary(t *testing.T, src *source, tel *telemetry.ReplStats) *Primary {
	t.Helper()
	p, err := ListenPrimary("127.0.0.1:0", PrimaryConfig{
		Log:      src.log,
		Snapshot: src.snapshot,
		Tel:      tel,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("ListenPrimary: %v", err)
	}
	return p
}

func startFollower(t *testing.T, addr string, app Applier, tel *telemetry.ReplStats) *Follower {
	t.Helper()
	f, err := StartFollower(FollowerConfig{Addr: addr, Applier: app, Tel: tel, Logf: t.Logf})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	return f
}

// TestStreamBasic drives groups through a live stream and checks the
// follower converges, acks flow back, and lag samples land.
func TestStreamBasic(t *testing.T) {
	src := newSource(1024)
	ptel := telemetry.NewReplStats()
	ftel := telemetry.NewReplStats()
	p := startPrimary(t, src, ptel)
	defer p.Close()
	defer src.log.Close()

	src.apply(Op{Key: 1, Val: 10}, Op{Key: 2, Val: 20})
	app := newFakeApplier()
	f := startFollower(t, p.Addr(), app, ftel)
	defer f.Stop()

	src.apply(Op{Key: 3, Val: 30})
	src.apply(Op{Key: 1, Val: 11}, Op{Del: true, Key: 2})

	waitFor(t, "follower convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	waitFor(t, "follower position", func() bool {
		gen, seq := f.Position()
		lgen, lseq := src.log.Position()
		return gen == lgen && seq == lseq
	})
	waitFor(t, "acks and lag samples", func() bool {
		return ptel.AcksReceived.Load() > 0 && ptel.LagSnapshot().Count() > 0
	})
	if got := ptel.Snapshots.Load(); got != 1 {
		t.Fatalf("snapshots served = %d, want 1 (initial transfer only)", got)
	}
	if p.Followers() != 1 {
		t.Fatalf("followers = %d, want 1", p.Followers())
	}
}

// TestReconnectInsideWindow severs the stream by restarting the
// primary's listener; the follower's position is still inside the log
// window, so catch-up must stream groups without a second snapshot.
func TestReconnectInsideWindow(t *testing.T) {
	src := newSource(1024)
	ptel := telemetry.NewReplStats()
	p := startPrimary(t, src, ptel)
	addr := p.Addr()
	defer src.log.Close()

	app := newFakeApplier()
	ftel := telemetry.NewReplStats()
	f := startFollower(t, addr, app, ftel)
	defer f.Stop()

	for i := uint64(0); i < 5; i++ {
		src.apply(Op{Key: i, Val: i * 100})
	}
	waitFor(t, "initial convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})

	p.Close()
	// Groups committed while the follower is disconnected; the window
	// (1024) comfortably retains them.
	for i := uint64(5); i < 10; i++ {
		src.apply(Op{Key: i, Val: i * 100})
	}
	p2, err := ListenPrimary(addr, PrimaryConfig{Log: src.log, Snapshot: src.snapshot, Tel: ptel, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart primary: %v", err)
	}
	defer p2.Close()

	waitFor(t, "catch-up convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	if got := ptel.Snapshots.Load(); got != 1 {
		t.Fatalf("snapshots served = %d, want 1 (catch-up inside window must stream)", got)
	}
	if ftel.Reconnects.Load() == 0 {
		t.Fatal("expected at least one reconnect")
	}
}

// TestReconnectBeyondWindow does the same but with a tiny window the
// disconnected-time commits overrun, forcing a full state transfer.
func TestReconnectBeyondWindow(t *testing.T) {
	src := newSource(4)
	ptel := telemetry.NewReplStats()
	p := startPrimary(t, src, ptel)
	addr := p.Addr()
	defer src.log.Close()

	app := newFakeApplier()
	f := startFollower(t, addr, app, telemetry.NewReplStats())
	defer f.Stop()

	src.apply(Op{Key: 1, Val: 1})
	waitFor(t, "initial convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})

	p.Close()
	// 20 groups through a window of 4: the follower's position falls
	// behind First(), so reconnect must be answered with a snapshot.
	for i := uint64(0); i < 20; i++ {
		src.apply(Op{Key: i, Val: i + 1000})
	}
	p2, err := ListenPrimary(addr, PrimaryConfig{Log: src.log, Snapshot: src.snapshot, Tel: ptel, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart primary: %v", err)
	}
	defer p2.Close()

	waitFor(t, "post-snapshot convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	if got := ptel.Snapshots.Load(); got != 2 {
		t.Fatalf("snapshots served = %d, want 2 (initial + beyond-window catch-up)", got)
	}
}

// TestGenerationMismatch bumps the log generation mid-stream — the
// cache server does this after a primary shard CrashReattach — and
// checks the connected follower is re-seeded with a snapshot in place.
func TestGenerationMismatch(t *testing.T) {
	src := newSource(1024)
	ptel := telemetry.NewReplStats()
	ftel := telemetry.NewReplStats()
	p := startPrimary(t, src, ptel)
	defer p.Close()
	defer src.log.Close()

	app := newFakeApplier()
	f := startFollower(t, p.Addr(), app, ftel)
	defer f.Stop()

	src.apply(Op{Key: 7, Val: 70})
	waitFor(t, "initial convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	oldGen, _ := f.Position()

	// Simulated primary crash: shed a buffered group (it never reached
	// NVM), rebuild, bump. The follower must converge to the post-crash
	// state, not the shed one.
	src.mu.Lock()
	src.m[8] = 80
	src.mu.Unlock()
	src.log.Bump()
	src.apply(Op{Key: 9, Val: 90})

	waitFor(t, "post-bump convergence", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	waitFor(t, "new generation adopted", func() bool {
		gen, _ := f.Position()
		return gen == src.log.Gen() && gen != oldGen
	})
	if got := ptel.Snapshots.Load(); got != 2 {
		t.Fatalf("snapshots served = %d, want 2 (initial + post-bump)", got)
	}
	if ftel.SnapshotsLoaded.Load() != 2 {
		t.Fatalf("snapshots loaded = %d, want 2", ftel.SnapshotsLoaded.Load())
	}
}

// TestSnapshotInterrupted fails the first snapshot install midway (as
// if the follower crashed during transfer): the position must stay
// invalid so the retry is answered with a fresh, complete snapshot.
func TestSnapshotInterrupted(t *testing.T) {
	src := newSource(1024)
	ptel := telemetry.NewReplStats()
	ftel := telemetry.NewReplStats()
	p := startPrimary(t, src, ptel)
	defer p.Close()
	defer src.log.Close()

	for i := uint64(0); i < 8; i++ {
		src.apply(Op{Key: i, Val: i})
	}

	app := newFakeApplier()
	app.failPairs.Store(1)
	f := startFollower(t, p.Addr(), app, ftel)
	defer f.Stop()

	waitFor(t, "convergence after interrupted snapshot", func() bool {
		return sameState(src.copyState(), app.copyState())
	})
	gen, _ := f.Position()
	if gen == 0 {
		t.Fatal("follower position still invalid after successful retry")
	}
	if ftel.Reconnects.Load() == 0 {
		t.Fatal("expected a reconnect after the injected snapshot failure")
	}
	if got := ptel.Snapshots.Load(); got < 2 {
		t.Fatalf("snapshots served = %d, want >= 2 (failed attempt + retry)", got)
	}
	if got := ftel.SnapshotsLoaded.Load(); got != 1 {
		t.Fatalf("snapshots loaded = %d, want 1 (only the complete transfer commits)", got)
	}
}

// TestLogWindow exercises the ring bookkeeping directly.
func TestLogWindow(t *testing.T) {
	l := NewLog(4)
	defer l.Close()
	gen := l.Gen()
	for i := uint64(1); i <= 10; i++ {
		if seq := l.Append([]Op{{Key: i}}, i, nil); seq != i {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if first := l.First(); first != 7 {
		t.Fatalf("First() = %d, want 7 (window of 4 ending at 10)", first)
	}
	if _, ok := l.Get(gen, 6); ok {
		t.Fatal("seq 6 should have been evicted")
	}
	for i := uint64(7); i <= 10; i++ {
		g, ok := l.Get(gen, i)
		if !ok || g.Seq != i || g.Ops[0].Key != i {
			t.Fatalf("Get(%d) = %+v ok=%v", i, g, ok)
		}
	}
	// A reader behind the window is told to snapshot; one inside it
	// advances; one on a foreign generation is told to snapshot.
	if _, st := l.Next(gen, 3, nil); st != NextSnapshot {
		t.Fatalf("Next behind window = %v, want NextSnapshot", st)
	}
	if g, st := l.Next(gen, 7, nil); st != NextOK || g.Seq != 8 {
		t.Fatalf("Next(7) = %+v %v, want seq 8", g, st)
	}
	if _, st := l.Next(gen+999, 10, nil); st != NextSnapshot {
		t.Fatalf("Next on foreign gen = %v, want NextSnapshot", st)
	}

	l.Bump()
	if l.Gen() != gen+1 {
		t.Fatalf("Bump: gen = %d, want %d", l.Gen(), gen+1)
	}
	if l.First() != 0 {
		t.Fatalf("Bump: First() = %d, want 0 (empty window)", l.First())
	}
	if seq := l.Append([]Op{{Key: 1}}, 0, nil); seq != 1 {
		t.Fatalf("post-bump append assigned seq %d, want 1", seq)
	}
}

// TestLogNextBlocksAndCloseUnblocks checks the blocking handoff.
func TestLogNextBlocksAndCloseUnblocks(t *testing.T) {
	l := NewLog(8)
	gen := l.Gen()
	got := make(chan Group, 1)
	go func() {
		g, st := l.Next(gen, 0, nil)
		if st == NextOK {
			got <- g
		}
	}()
	waitFor(t, "reader parked in Next", func() bool { return l.waiting() == 1 })
	l.Append([]Op{{Key: 42, Val: 1}}, 0, nil)
	select {
	case g := <-got:
		if g.Seq != 1 || g.Ops[0].Key != 42 {
			t.Fatalf("blocked Next returned %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on Append")
	}

	closed := make(chan NextStatus, 1)
	go func() {
		_, st := l.Next(gen, 1, nil)
		closed <- st
	}()
	waitFor(t, "reader parked in Next", func() bool { return l.waiting() == 1 })
	l.Close()
	select {
	case st := <-closed:
		if st != NextClosed {
			t.Fatalf("Next after Close = %v, want NextClosed", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on Close")
	}
}

// TestWireRoundTrip round-trips every frame type through the codec.
func TestWireRoundTrip(t *testing.T) {
	g := Group{Seq: 99, Epoch: 41, Ops: []Op{{Key: 1, Val: 2}, {Del: true, Key: 3}}}
	dg, err := decodeGroup(encodeGroup(g))
	if err != nil || dg.Seq != 99 || dg.Epoch != 41 || len(dg.Ops) != 2 || dg.Ops[1].Del != true || dg.Ops[0].Val != 2 {
		t.Fatalf("group round-trip: %+v err=%v", dg, err)
	}
	hg, hs, err := decodeHello(encodeHello(5, 6))
	if err != nil || hg != 5 || hs != 6 {
		t.Fatalf("hello round-trip: %d %d err=%v", hg, hs, err)
	}
	if _, _, err := decodeHello(encodeSnapshotBegin(1, 2)); err == nil {
		t.Fatal("hello decode accepted a frame without the magic")
	}
	pairs, err := decodeSnapshotChunk(encodeSnapshotChunk([]Pair{{Key: 8, Val: 9}}))
	if err != nil || len(pairs) != 1 || pairs[0].Val != 9 {
		t.Fatalf("chunk round-trip: %+v err=%v", pairs, err)
	}
	agen, seq, err := decodeAck(encodeAck(77, 1234))
	if err != nil || agen != 77 || seq != 1234 {
		t.Fatalf("ack round-trip: %d %d err=%v", agen, seq, err)
	}
}

// TestAckTrackingAndEpochPropagation pins the barrier substrate: the
// primary's per-follower acked positions (AckedCount), the OnAck wakeup
// hook, and the epoch stamp riding group frames into the follower's
// LastEpoch.
func TestAckTrackingAndEpochPropagation(t *testing.T) {
	src := newSource(1024)
	var acks atomic.Int64
	p, err := ListenPrimary("127.0.0.1:0", PrimaryConfig{
		Log:      src.log,
		Snapshot: src.snapshot,
		OnAck:    func() { acks.Add(1) },
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("ListenPrimary: %v", err)
	}
	defer p.Close()
	defer src.log.Close()

	app := newFakeApplier()
	f := startFollower(t, p.Addr(), app, nil)
	defer f.Stop()

	// Wait out the initial snapshot handshake: its ack (position seq 0)
	// proves the follower is live, and only groups appended after it
	// travel as FrameGroup — the path that carries the epoch stamp.
	gen := src.log.Gen()
	waitFor(t, "initial snapshot ack", func() bool {
		return p.AckedCount(gen, 0) == 1
	})

	// Stamp an epoch on the group the source appends.
	src.mu.Lock()
	src.m[1] = 10
	src.mu.Unlock()
	seq := src.log.Append([]Op{{Key: 1, Val: 10}}, 42, nil)

	waitFor(t, "follower ack of seq", func() bool {
		return p.AckedCount(gen, seq) == 1
	})
	if got := f.LastEpoch(); got != 42 {
		t.Fatalf("follower LastEpoch = %d, want 42", got)
	}
	if acks.Load() == 0 {
		t.Fatal("OnAck hook never fired")
	}
	// A sequence beyond anything appended counts no followers; a foreign
	// generation counts none either.
	if got := p.AckedCount(gen, seq+1); got != 0 {
		t.Fatalf("AckedCount beyond frontier = %d, want 0", got)
	}
	if got := p.AckedCount(gen+1, seq); got != 0 {
		t.Fatalf("AckedCount foreign gen = %d, want 0", got)
	}

	// Stopping the follower must remove its entry: a departed replica
	// stops counting toward barriers.
	f.Stop()
	waitFor(t, "acked entry removal", func() bool {
		return p.AckedCount(gen, seq) == 0
	})
}
