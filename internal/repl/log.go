package repl

import (
	"sync"
	"time"
)

// NextStatus reports how a Log.Next call resolved.
type NextStatus int

// Next outcomes.
const (
	// NextOK means the requested group was returned.
	NextOK NextStatus = iota
	// NextSnapshot means the requested position has fallen behind the
	// retained window or belongs to an older generation; the caller must
	// take a full snapshot and resume from its position.
	NextSnapshot
	// NextClosed means the log has been closed and no further groups
	// will be appended.
	NextClosed
)

// entry is one retained group plus the wall-clock instant it was
// appended, which the primary uses to compute replication lag when the
// follower's ack for it arrives.
type entry struct {
	group Group
	at    time.Time
}

// Log is the primary's bounded in-memory replication log: a ring of the
// most recently committed groups, keyed by (generation, sequence).
// Sequence numbers start at 1 and increase by one per appended group
// within a generation. The generation is seeded from the wall clock at
// construction — so positions from a previous primary life can never
// alias into this one — and is bumped, with the retained window
// discarded, whenever the primary's state can no longer be described
// as "the snapshot plus a suffix of this log", e.g. after a primary
// shard crash-reattach rebuilds state from NVM and sheds buffered
// (not-yet-persistent) batches. A follower positioned on any other
// generation, or behind the window's first retained sequence, is told
// to re-snapshot.
//
// Appends never block: when the ring is full the oldest entry is
// evicted, shrinking the window. Readers block in Next until the
// requested sequence is appended, the window moves past them, the
// generation changes, or the log closes.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []entry
	gen    uint64
	first  uint64 // seq of the oldest retained entry; first > last means empty
	next   uint64 // seq the next appended group will receive
	closed bool
	nWait  int // Next callers parked in cond.Wait (see waiting)
}

// NewLog returns an empty log retaining at most window groups.
// A window below 1 is raised to 1.
func NewLog(window int) *Log {
	if window < 1 {
		window = 1
	}
	l := &Log{
		ring:  make([]entry, 0, window),
		gen:   uint64(time.Now().UnixNano()),
		first: 1,
		next:  1,
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Gen returns the current generation.
func (l *Log) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Position returns the current (generation, last assigned sequence);
// the sequence is 0 when nothing has been appended this generation.
func (l *Log) Position() (gen, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen, l.next - 1
}

// First returns the sequence of the oldest retained group, or 0 when
// the window is empty.
func (l *Log) First() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.first >= l.next {
		return 0
	}
	return l.first
}

// Append assigns the next sequence number to ops, retains the group in
// the window (evicting the oldest group if full), and wakes blocked
// readers. It returns the assigned sequence. The epoch stamps the
// group's durability epoch on the wire (0 when the group carries only
// durable-tier effects); marks carries the session dedup records the
// group's sessioned requests committed alongside the ops. Appending a
// group with neither ops nor marks is a no-op returning the last
// assigned sequence.
func (l *Log) Append(ops []Op, epoch uint64, marks []SessRec) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if (len(ops) == 0 && len(marks) == 0) || l.closed {
		return l.next - 1
	}
	seq := l.next
	l.next++
	e := entry{group: Group{Seq: seq, Epoch: epoch, Ops: ops, Marks: marks}, at: time.Now()}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		// Ring full: the slot for seq is the one the evicted oldest
		// occupied (seq-1 ≡ first-1 mod cap when next-first == cap).
		l.ring[int(seq-1)%cap(l.ring)] = e
		l.first++
	}
	l.cond.Broadcast()
	return seq
}

// Get returns the group at seq in the current generation if retained.
func (l *Log) Get(gen, seq uint64) (Group, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if gen != l.gen || seq < l.first || seq >= l.next {
		return Group{}, false
	}
	return l.entryAt(seq).group, true
}

// AppendTime returns the wall-clock instant the group at seq was
// appended, if it is still retained in the current generation. The
// primary uses it to turn a follower's ack into a lag sample.
func (l *Log) AppendTime(gen, seq uint64) (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if gen != l.gen || seq < l.first || seq >= l.next {
		return time.Time{}, false
	}
	return l.entryAt(seq).at, true
}

// entryAt indexes the ring; caller holds mu and has bounds-checked seq.
// The group with sequence s always lives at slot (s-1) mod cap: while
// filling, first stays 1 so append lands seq s at index s-1; once full,
// eviction writes each new seq into exactly that slot.
func (l *Log) entryAt(seq uint64) *entry {
	return &l.ring[int(seq-1)%cap(l.ring)]
}

// Next blocks until the group following (gen, seq) is available and
// returns it. It resolves to NextSnapshot when the caller's position is
// on another generation or has fallen behind the retained window, and
// to NextClosed when the log closes or the optional cancelled
// predicate reports true after a Wake (a per-reader cancellation the
// Primary uses to shut down streamers without closing the shared log).
func (l *Log) Next(gen, seq uint64, cancelled func() bool) (Group, NextStatus) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed || (cancelled != nil && cancelled()) {
			return Group{}, NextClosed
		}
		if gen != l.gen {
			return Group{}, NextSnapshot
		}
		want := seq + 1
		if want < l.first {
			return Group{}, NextSnapshot
		}
		if want < l.next {
			return l.entryAt(want).group, NextOK
		}
		l.nWait++
		l.cond.Wait()
		l.nWait--
	}
}

// waiting reports how many Next callers are currently parked — the
// condition blocking-handoff tests poll for instead of sleeping a fixed
// interval and hoping the reader got there.
func (l *Log) waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nWait
}

// Bump discards the retained window and moves to the next generation,
// waking blocked readers so their streams re-snapshot. The primary
// calls it when a shard crash-reattach makes the live state diverge
// from "snapshot + log suffix" (buffered batches are shed on crash).
func (l *Log) Bump() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.gen++
	l.ring = l.ring[:0]
	l.first = 1
	l.next = 1
	l.cond.Broadcast()
}

// Wake broadcasts to blocked Next callers so they re-evaluate their
// cancelled predicate; the log's own state is untouched.
func (l *Log) Wake() {
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Close wakes all blocked readers with NextClosed and makes further
// appends no-ops.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}
