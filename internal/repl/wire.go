// Package repl is the preventive replication tier the planner
// prescribes for site disasters: asynchronous primary→follower
// streaming of committed operation groups over TCP.
//
// The paper's Section 3 taxonomy is explicit that a site disaster
// admits no timely rescue — there is no just-in-time action that moves
// data off a machine that no longer exists — so procrastination fails
// and only prevention satisfies the data-safety requirement: the data
// must already be somewhere else when the failure hits.
// core.DerivePlan derives exactly that verdict (`tspplan -hardware
// geo`); this package executes it. A Primary tails the cache server's
// committed batches — the replication unit is the crash-atomic OCS
// group the batch pipeline already commits as one Atlas critical
// section — and streams them over a length-prefixed wire protocol to a
// Follower, which applies them through the same stack API and can be
// promoted to serve writes after the primary's site is lost.
//
// The stream carries resolved effects, not requests: an incr is
// replicated as an absolute set of the value it produced, so replaying
// any suffix of the log over a snapshot converges (last-writer-wins per
// key, and the primary serializes all mutations per shard before
// assigning sequence numbers). Catch-up on (re)connect is driven by a
// bounded in-memory Log keyed by (generation, sequence): a follower
// whose position is inside the retained window streams the missing
// groups; one behind the window — or on the wrong generation, as after
// a primary power failure — receives a full snapshot of the primary's
// shards and then streams from the snapshot's position.
package repl

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ProtocolMagic identifies the replication stream and its version; a
// hello frame carrying anything else is rejected. Bump the trailing
// digit on any incompatible framing change.
const ProtocolMagic uint64 = 0x5453_5052_4550_4C34 // "TSPREPL4"

// Frame types, the first payload byte of every frame.
const (
	// FrameHello is the follower's opening frame: magic, then the
	// (generation, sequence) position it has applied through.
	FrameHello = byte(iota + 1)
	// FrameSnapshotBegin announces a full state transfer and carries the
	// (generation, sequence) position the snapshot is consistent through.
	FrameSnapshotBegin
	// FrameSnapshotChunk carries a bounded batch of key/value pairs.
	FrameSnapshotChunk
	// FrameSnapshotEnd closes the state transfer; the follower commits
	// the position from the matching FrameSnapshotBegin.
	FrameSnapshotEnd
	// FrameGroup carries one committed operation group with its sequence
	// number.
	FrameGroup
	// FrameAck is the follower's cumulative acknowledgement of the
	// sequence number it has applied through.
	FrameAck
	// FrameSessChunk carries a bounded batch of session dedup records
	// (plus the primary's evicted-seq floor) during a state transfer, so
	// a promoted follower inherits the exactly-once window and a client
	// retrying against it after failover is still suppressed.
	FrameSessChunk
)

// maxFrame bounds a frame's payload so a corrupt length prefix cannot
// ask either side to allocate unbounded memory. Snapshot chunks and
// groups are sized well inside it.
const maxFrame = 1 << 24

// Op is one replicated effect: an absolute set of Key to Val, or — when
// Del is true — a delete of Key. Increments never appear on the wire;
// the primary resolves them to the value they produced, which is what
// makes suffix replay over a snapshot converge.
type Op struct {
	// Del selects delete; otherwise the op is an absolute set.
	Del bool
	// List routes the op to the ordered keyspace (the skip list)
	// instead of the hash map.
	List bool
	// Key is the affected key.
	Key uint64
	// Val is the value stored (ignored for deletes).
	Val uint64
}

// SessRec is one session dedup record on the wire: the highest request
// sequence the primary applied for the session, the reply payload a
// retry of that request must be answered with, and the witness key the
// record is routed by (shardOf(Key) on whichever server holds it — the
// same place the retried command's dedup check will look). The same
// shape rides committed groups (as marks witnessing the group's
// sessioned requests) and snapshot session chunks.
type SessRec struct {
	// Sess is the client session id (ids start at 1).
	Sess uint64
	// Seq is the highest request sequence applied for the session.
	Seq uint64
	// Payload reconstructs the original reply on a suppressed retry
	// (e.g. an incr's resolved value).
	Payload uint64
	// Key is the witness key the record is routed and stored by.
	Key uint64
}

// Pair is one key/value pair of a snapshot transfer.
type Pair struct {
	// List marks a pair belonging to the ordered keyspace.
	List bool
	// Key is the snapshotted key.
	Key uint64
	// Val is its value at the snapshot position.
	Val uint64
}

// Group is one replication unit: the mutations one committed Atlas
// critical section (a drained batch group) produced, in commit order.
type Group struct {
	// Seq is the group's position in the primary's log; consecutive
	// groups have consecutive sequence numbers within a generation.
	Seq uint64
	// Epoch is the durability epoch the primary stamped on the group's
	// relaxed-tier writes when it committed them (0 when the group
	// carried only durable-tier effects, or the epoch clock is off). A
	// follower records the highest epoch it has applied so a promoted
	// replica can report how far the relaxed frontier had propagated.
	Epoch uint64
	// Ops are the group's resolved effects in commit order.
	Ops []Op
	// Marks are the session dedup records the group's sessioned requests
	// (and flushed sessioned relaxed writes) committed alongside Ops. A
	// follower applies each mark atomically with the group so its dedup
	// window never trails state it has already applied.
	Marks []SessRec
}

// writeFrame emits one length-prefixed frame: a 4-byte little-endian
// payload length, then the payload (type byte first).
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame and returns its payload (type byte first).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("repl: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// u64 appends v little-endian.
func u64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

// frameReader decodes the fixed-width fields of a received payload.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (f *frameReader) u64() uint64 {
	if f.err != nil {
		return 0
	}
	if f.off+8 > len(f.b) {
		f.err = fmt.Errorf("repl: truncated frame (%d bytes, need %d)", len(f.b), f.off+8)
		return 0
	}
	v := binary.LittleEndian.Uint64(f.b[f.off:])
	f.off += 8
	return v
}

func (f *frameReader) byte() byte {
	if f.err != nil {
		return 0
	}
	if f.off >= len(f.b) {
		f.err = fmt.Errorf("repl: truncated frame (%d bytes)", len(f.b))
		return 0
	}
	v := f.b[f.off]
	f.off++
	return v
}

// encodeHello builds the follower's opening frame.
func encodeHello(gen, seq uint64) []byte {
	b := make([]byte, 0, 1+24)
	b = append(b, FrameHello)
	b = u64(b, ProtocolMagic)
	b = u64(b, gen)
	b = u64(b, seq)
	return b
}

// decodeHello parses a hello payload (type byte already consumed by the
// caller's switch is NOT assumed: payload includes the type byte).
func decodeHello(payload []byte) (gen, seq uint64, err error) {
	f := &frameReader{b: payload, off: 1}
	if magic := f.u64(); f.err == nil && magic != ProtocolMagic {
		return 0, 0, fmt.Errorf("repl: bad hello magic %#x", magic)
	}
	gen = f.u64()
	seq = f.u64()
	return gen, seq, f.err
}

// encodeSnapshotBegin builds the state-transfer announcement.
func encodeSnapshotBegin(gen, seq uint64) []byte {
	b := make([]byte, 0, 1+16)
	b = append(b, FrameSnapshotBegin)
	b = u64(b, gen)
	b = u64(b, seq)
	return b
}

// decodeSnapshotBegin parses a snapshot-begin payload.
func decodeSnapshotBegin(payload []byte) (gen, seq uint64, err error) {
	f := &frameReader{b: payload, off: 1}
	gen = f.u64()
	seq = f.u64()
	return gen, seq, f.err
}

// Record kind bits shared by group ops and snapshot pairs: bit 0 is
// delete (ops only), bit 1 routes to the ordered keyspace.
const (
	kindDel  = byte(1 << 0)
	kindList = byte(1 << 1)
)

// encodeSnapshotChunk builds one chunk of pairs: a count, then one
// kind byte + key + value per pair (17 bytes each).
func encodeSnapshotChunk(pairs []Pair) []byte {
	b := make([]byte, 0, 1+8+17*len(pairs))
	b = append(b, FrameSnapshotChunk)
	b = u64(b, uint64(len(pairs)))
	for _, p := range pairs {
		kind := byte(0)
		if p.List {
			kind |= kindList
		}
		b = append(b, kind)
		b = u64(b, p.Key)
		b = u64(b, p.Val)
	}
	return b
}

// decodeSnapshotChunk parses a chunk payload.
func decodeSnapshotChunk(payload []byte) ([]Pair, error) {
	f := &frameReader{b: payload, off: 1}
	n := f.u64()
	if f.err != nil {
		return nil, f.err
	}
	if n > uint64(len(payload)/17) {
		return nil, fmt.Errorf("repl: chunk count %d exceeds frame", n)
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		kind := f.byte()
		pairs[i].List = kind&kindList != 0
		pairs[i].Key = f.u64()
		pairs[i].Val = f.u64()
	}
	return pairs, f.err
}

// encodeGroup builds one group frame: sequence, epoch, op count, mark
// count, the 17-byte op records, then the 32-byte mark records.
func encodeGroup(g Group) []byte {
	b := make([]byte, 0, 1+32+17*len(g.Ops)+32*len(g.Marks))
	b = append(b, FrameGroup)
	b = u64(b, g.Seq)
	b = u64(b, g.Epoch)
	b = u64(b, uint64(len(g.Ops)))
	b = u64(b, uint64(len(g.Marks)))
	for _, op := range g.Ops {
		kind := byte(0)
		if op.Del {
			kind |= kindDel
		}
		if op.List {
			kind |= kindList
		}
		b = append(b, kind)
		b = u64(b, op.Key)
		b = u64(b, op.Val)
	}
	for _, m := range g.Marks {
		b = u64(b, m.Sess)
		b = u64(b, m.Seq)
		b = u64(b, m.Payload)
		b = u64(b, m.Key)
	}
	return b
}

// decodeGroup parses a group payload.
func decodeGroup(payload []byte) (Group, error) {
	f := &frameReader{b: payload, off: 1}
	var g Group
	g.Seq = f.u64()
	g.Epoch = f.u64()
	n := f.u64()
	nm := f.u64()
	if f.err != nil {
		return g, f.err
	}
	if n > uint64(len(payload)/17) {
		return g, fmt.Errorf("repl: group op count %d exceeds frame", n)
	}
	if nm > uint64(len(payload)/32) {
		return g, fmt.Errorf("repl: group mark count %d exceeds frame", nm)
	}
	g.Ops = make([]Op, n)
	for i := range g.Ops {
		kind := f.byte()
		g.Ops[i].Del = kind&kindDel != 0
		g.Ops[i].List = kind&kindList != 0
		g.Ops[i].Key = f.u64()
		g.Ops[i].Val = f.u64()
	}
	if nm > 0 {
		g.Marks = make([]SessRec, nm)
		for i := range g.Marks {
			g.Marks[i].Sess = f.u64()
			g.Marks[i].Seq = f.u64()
			g.Marks[i].Payload = f.u64()
			g.Marks[i].Key = f.u64()
		}
	}
	return g, f.err
}

// encodeSessChunk builds one session-window chunk of a state transfer:
// the primary's evicted-seq floor, a count, then one 32-byte record per
// session.
func encodeSessChunk(recs []SessRec, floor uint64) []byte {
	b := make([]byte, 0, 1+16+32*len(recs))
	b = append(b, FrameSessChunk)
	b = u64(b, floor)
	b = u64(b, uint64(len(recs)))
	for _, m := range recs {
		b = u64(b, m.Sess)
		b = u64(b, m.Seq)
		b = u64(b, m.Payload)
		b = u64(b, m.Key)
	}
	return b
}

// decodeSessChunk parses a session-window chunk payload.
func decodeSessChunk(payload []byte) ([]SessRec, uint64, error) {
	f := &frameReader{b: payload, off: 1}
	floor := f.u64()
	n := f.u64()
	if f.err != nil {
		return nil, 0, f.err
	}
	if n > uint64(len(payload)/32) {
		return nil, 0, fmt.Errorf("repl: session chunk count %d exceeds frame", n)
	}
	recs := make([]SessRec, n)
	for i := range recs {
		recs[i].Sess = f.u64()
		recs[i].Seq = f.u64()
		recs[i].Payload = f.u64()
		recs[i].Key = f.u64()
	}
	return recs, floor, f.err
}

// encodeAck builds the follower's cumulative acknowledgement: the
// generation the follower is positioned on plus the sequence it has
// applied through. The generation makes acks unambiguous across a
// re-snapshot — a primary counting acks toward a `wait repl` barrier
// must not credit a stale-generation ack against a current-generation
// sequence.
func encodeAck(gen, seq uint64) []byte {
	b := make([]byte, 0, 1+16)
	b = append(b, FrameAck)
	b = u64(b, gen)
	b = u64(b, seq)
	return b
}

// decodeAck parses an ack payload.
func decodeAck(payload []byte) (gen, seq uint64, err error) {
	f := &frameReader{b: payload, off: 1}
	gen = f.u64()
	seq = f.u64()
	return gen, seq, f.err
}
