package repl

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/telemetry"
)

// Applier is the surface a follower applies replicated state through.
// The cache server implements it over the same sharded stack API that
// serves clients, so replicated data lands with identical persistence
// semantics. Calls arrive from a single goroutine, in stream order.
type Applier interface {
	// Wipe deletes all local pairs; called when a snapshot install
	// begins so the transferred state replaces, not merges with,
	// whatever the follower held. Session dedup windows are NOT wiped:
	// records already inherited must keep suppressing retries across a
	// re-snapshot (upserts are guarded by sequence, so replaying the
	// incoming window over them converges).
	Wipe() error
	// ApplyPairs installs one snapshot chunk.
	ApplyPairs(pairs []Pair) error
	// ApplySessions merges one session-window chunk (records plus the
	// primary's evicted-seq floor) into the local dedup window.
	ApplySessions(recs []SessRec, floor uint64) error
	// ApplyGroup applies one committed group's resolved effects in
	// order, committing each session mark atomically with the ops on the
	// mark's shard.
	ApplyGroup(ops []Op, marks []SessRec) error
}

// FollowerConfig configures a replication client.
type FollowerConfig struct {
	// Addr is the primary's replication listener address. Required.
	Addr string
	// Applier receives replicated state. Required.
	Applier Applier
	// Tel receives the follower-side replication counters. Optional
	// (nil-safe: a fresh bundle is substituted).
	Tel *telemetry.ReplStats
	// Logf, when set, receives human-readable connection events.
	Logf func(format string, args ...any)
}

// Follower maintains a connection to a primary, applying the streamed
// groups and snapshots and acknowledging applied sequence numbers. It
// redials with backoff on any error; its position survives reconnects
// so catch-up inside the primary's log window avoids a state transfer.
type Follower struct {
	cfg     FollowerConfig
	wg      sync.WaitGroup
	stopped atomic.Bool

	mu    sync.Mutex
	conn  net.Conn
	gen   uint64 // position applied through; 0 ⇒ needs snapshot
	seq   uint64
	epoch uint64 // highest durability epoch seen on an applied group
}

// StartFollower begins replicating from the primary at cfg.Addr.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Addr == "" || cfg.Applier == nil {
		return nil, fmt.Errorf("repl: FollowerConfig needs Addr and Applier")
	}
	if cfg.Tel == nil {
		cfg.Tel = telemetry.NewReplStats()
	}
	f := &Follower{cfg: cfg}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Position returns the (generation, sequence) the follower has applied
// through; generation 0 means it has no usable position and will
// request a snapshot on its next connection.
func (f *Follower) Position() (gen, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen, f.seq
}

// LastEpoch returns the highest durability epoch stamped on any group
// this follower has applied (0 before the first epoch-stamped group).
// After promotion it tells an operator how far the primary's relaxed
// frontier had propagated here.
func (f *Follower) LastEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Stop severs the connection and waits for the replication goroutine
// to exit. The follower does not reconnect afterwards; promotion stops
// replication exactly this way before writes are enabled.
func (f *Follower) Stop() {
	if !f.stopped.CompareAndSwap(false, true) {
		return
	}
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// run is the dial-stream-redial loop.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := 25 * time.Millisecond
	first := true
	for !f.stopped.Load() {
		if !first {
			f.cfg.Tel.Reconnects.Inc()
		}
		first = false
		conn, err := net.DialTimeout("tcp", f.cfg.Addr, 2*time.Second)
		if err != nil {
			f.sleep(backoff)
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		backoff = 25 * time.Millisecond
		f.mu.Lock()
		if f.stopped.Load() {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conn = conn
		f.mu.Unlock()
		if err := f.stream(conn); err != nil && !f.stopped.Load() {
			f.logf("repl: follower: %v (reconnecting)", err)
		}
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}
}

// sleep waits d or until Stop, polling cheaply.
func (f *Follower) sleep(d time.Duration) {
	const step = 10 * time.Millisecond
	for d > 0 && !f.stopped.Load() {
		s := step
		if d < s {
			s = d
		}
		time.Sleep(s)
		d -= s
	}
}

// stream runs one connection: hello with the current position, then
// apply frames until error or stop.
func (f *Follower) stream(conn net.Conn) error {
	gen, seq := f.Position()
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, encodeHello(gen, seq)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	f.logf("repl: follower connected to %s at gen %d seq %d", f.cfg.Addr, gen, seq)

	r := bufio.NewReader(conn)
	// Position announced by an in-flight snapshot; committed only at
	// FrameSnapshotEnd so a transfer severed halfway leaves the
	// follower positionless and forces a fresh snapshot on reconnect.
	var pendGen, pendSeq uint64
	for {
		payload, err := readFrame(r)
		if err != nil {
			return err
		}
		if len(payload) == 0 {
			return fmt.Errorf("repl: empty frame")
		}
		switch payload[0] {
		case FrameSnapshotBegin:
			pendGen, pendSeq, err = decodeSnapshotBegin(payload)
			if err != nil {
				return err
			}
			// Invalidate the position before touching local state: from
			// here until SnapshotEnd the local copy matches no log
			// position.
			f.setPosition(0, 0)
			if err := f.cfg.Applier.Wipe(); err != nil {
				return err
			}
		case FrameSnapshotChunk:
			pairs, err := decodeSnapshotChunk(payload)
			if err != nil {
				return err
			}
			if err := f.cfg.Applier.ApplyPairs(pairs); err != nil {
				return err
			}
		case FrameSessChunk:
			recs, floor, err := decodeSessChunk(payload)
			if err != nil {
				return err
			}
			if err := f.cfg.Applier.ApplySessions(recs, floor); err != nil {
				return err
			}
		case FrameSnapshotEnd:
			f.setPosition(pendGen, pendSeq)
			f.cfg.Tel.SnapshotsLoaded.Inc()
			if err := f.ack(w, pendGen, pendSeq); err != nil {
				return err
			}
		case FrameGroup:
			g, err := decodeGroup(payload)
			if err != nil {
				return err
			}
			if err := f.cfg.Applier.ApplyGroup(g.Ops, g.Marks); err != nil {
				// Local apply failure means the copy may have diverged;
				// drop the position so reconnect takes a fresh snapshot.
				f.setPosition(0, 0)
				return err
			}
			f.cfg.Tel.GroupsApplied.Inc()
			f.cfg.Tel.OpsApplied.Add(uint64(len(g.Ops)))
			f.mu.Lock()
			f.seq = g.Seq
			ackGen := f.gen
			if g.Epoch > f.epoch {
				f.epoch = g.Epoch
			}
			f.mu.Unlock()
			if err := f.ack(w, ackGen, g.Seq); err != nil {
				return err
			}
		default:
			return fmt.Errorf("repl: unexpected frame type %d", payload[0])
		}
	}
}

func (f *Follower) setPosition(gen, seq uint64) {
	f.mu.Lock()
	f.gen = gen
	f.seq = seq
	f.mu.Unlock()
}

func (f *Follower) ack(w *bufio.Writer, gen, seq uint64) error {
	if err := writeFrame(w, encodeAck(gen, seq)); err != nil {
		return err
	}
	return w.Flush()
}
