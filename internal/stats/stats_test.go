package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanAndVariance(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample returned nonzero statistics")
	}
	if !strings.Contains(s.Summary(), "n=0") {
		t.Fatalf("Summary = %q", s.Summary())
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	vs := s.Values()
	vs[0] = 999 // mutating the copy must not corrupt the sample
	if got := s.Values()[0]; got != 1 {
		t.Fatalf("Values leaked internal slice: values[0] = %v after external mutation", got)
	}
	if s.Min() != 1 {
		t.Fatalf("Min = %v after external mutation, want 1", s.Min())
	}
}

func TestMerge(t *testing.T) {
	var a, b Sample
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	for _, v := range []float64{4, 5} {
		b.Add(v)
	}
	a.Merge(&b)
	if a.N() != 5 {
		t.Fatalf("merged N = %d, want 5", a.N())
	}
	if math.Abs(a.Mean()-3) > 1e-12 {
		t.Fatalf("merged Mean = %v, want 3", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("merged min/max = %v/%v, want 1/5", a.Min(), a.Max())
	}
	a.Merge(nil) // nil is a no-op
	if a.N() != 5 {
		t.Fatalf("N after nil merge = %d, want 5", a.N())
	}
	// Self-merge doubles the sample instead of looping forever.
	var c Sample
	c.Add(1)
	c.Add(3)
	c.Merge(&c)
	if c.N() != 4 {
		t.Fatalf("self-merge N = %d, want 4", c.N())
	}
	if math.Abs(c.Mean()-2) > 1e-12 {
		t.Fatalf("self-merge Mean = %v, want 2", c.Mean())
	}
}

func TestMinMax(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, -1, 7, 0} {
		s.Add(v)
	}
	if s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("clamped p-5 = %v, want 1", got)
	}
	if got := s.Percentile(200); got != 100 {
		t.Fatalf("clamped p200 = %v, want 100", got)
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		var sum float64
		clean := vals[:0]
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			clean = append(clean, v)
		}
		for _, v := range clean {
			s.Add(v)
			sum += v
		}
		if len(clean) == 0 {
			return s.Mean() == 0
		}
		naive := sum / float64(len(clean))
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinLEMeanLEMax(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			// Exclude magnitudes where v-mean itself overflows; Welford
			// is stable but not immune to float64 range limits.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9*math.Abs(s.Mean()) &&
			s.Mean() <= s.Max()+1e-9*math.Abs(s.Max())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"name", "value", "pct"}}
	tb.AddRow("alpha", "12.5", "34%")
	tb.AddRow("beta-long-name", "7", "100%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header malformed: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator malformed: %q", lines[1])
	}
	if !strings.Contains(out, "beta-long-name") {
		t.Fatal("row content missing")
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"12", "-3.5", "1e9", "45%"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "abc", "12a", "-"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}
