// Package stats provides the small statistical helpers the benchmark
// harness and command-line tools use to summarize repeated measurements:
// streaming mean/variance (Welford), order statistics, and fixed-width
// table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations for summary statistics.
type Sample struct {
	values []float64
	mean   float64
	m2     float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	// Welford's online update keeps mean/variance numerically stable.
	delta := v - s.mean
	s.mean += delta / float64(len(s.values))
	s.m2 += delta * (v - s.mean)
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the raw observations. The internal slice
// used to escape here, which let any caller corrupt the Welford state
// behind the accessor's back; a copy keeps the accumulator sealed.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Merge folds every observation of other into s — the per-worker
// aggregation step the harness previously hand-rolled over the exposed
// slice. Merging a sample into itself is safe (the count is captured
// before any append).
func (s *Sample) Merge(other *Sample) {
	if other == nil {
		return
	}
	n := len(other.values)
	for i := 0; i < n; i++ {
		s.Add(other.values[i])
	}
}

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if len(s.values) < 2 {
		return 0
	}
	return s.m2 / float64(len(s.values)-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with none).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 with none).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Summary renders n/mean/std/min/max in one line.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Max())
}

// Table renders rows of cells as a fixed-width text table with a header
// row and a separator, right-aligning numeric-looking cells.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if looksNumeric(cell) {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == '-' || r == '+' || r == '%' || r == 'e' || r == 'E':
		default:
			return false
		}
	}
	return digits > 0
}
