package skiplist

import (
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// Model-based testing: a random single-threaded op sequence against the
// skip list and a plain Go map must agree at every step, and the list
// must survive a crash-with-rescue at the end holding exactly the model.

type modelOp struct {
	kind uint8 // 0 put, 1 inc, 2 delete, 3 get
	key  uint64
	val  uint64
}

func decodeOps(raw []uint32) []modelOp {
	ops := make([]modelOp, 0, len(raw))
	for _, r := range raw {
		ops = append(ops, modelOp{
			kind: uint8(r % 4),
			key:  uint64(r>>2) % 64, // small key space -> plenty of collisions
			val:  uint64(r),
		})
	}
	return ops
}

func TestQuickMatchesModel(t *testing.T) {
	f := func(raw []uint32) bool {
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
		heap, err := pheap.Format(dev)
		if err != nil {
			return false
		}
		l, err := New(heap, 8)
		if err != nil {
			return false
		}
		heap.SetRoot(l.Ptr())
		model := map[uint64]uint64{}
		for _, op := range decodeOps(raw) {
			switch op.kind {
			case 0:
				if _, err := l.Put(op.key, op.val); err != nil {
					return false
				}
				model[op.key] = op.val
			case 1:
				if _, err := l.Inc(op.key, op.val); err != nil {
					return false
				}
				model[op.key] += op.val
			case 2:
				ok, err := l.Delete(op.key)
				if err != nil {
					return false
				}
				_, inModel := model[op.key]
				if ok != inModel {
					return false
				}
				delete(model, op.key)
			case 3:
				v, ok := l.Get(op.key)
				mv, inModel := model[op.key]
				if ok != inModel || (ok && v != mv) {
					return false
				}
			}
		}
		// Full agreement at the end.
		if l.Len() != len(model) {
			return false
		}
		agree := true
		l.Range(func(k, v uint64) bool {
			if mv, ok := model[k]; !ok || mv != v {
				agree = false
				return false
			}
			return true
		})
		if !agree {
			return false
		}
		if _, err := l.Verify(); err != nil {
			return false
		}
		// Crash with rescue; the recovered list must hold the model.
		dev.CrashRescue()
		dev.Restart()
		heap2, err := pheap.Open(dev)
		if err != nil {
			return false
		}
		l2, err := Open(heap2, heap2.Root())
		if err != nil {
			return false
		}
		if _, err := l2.Verify(); err != nil {
			return false
		}
		for k, v := range model {
			got, ok := l2.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return l2.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compact + RebuildIndex never change the live contents.
func TestQuickMaintenancePreservesContents(t *testing.T) {
	f := func(raw []uint32) bool {
		dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
		heap, _ := pheap.Format(dev)
		l, err := New(heap, 8)
		if err != nil {
			return false
		}
		heap.SetRoot(l.Ptr())
		model := map[uint64]uint64{}
		for _, op := range decodeOps(raw) {
			switch op.kind {
			case 0, 3:
				if _, err := l.Put(op.key, op.val); err != nil {
					return false
				}
				model[op.key] = op.val
			case 1:
				if _, err := l.Inc(op.key, op.val); err != nil {
					return false
				}
				model[op.key] += op.val
			case 2:
				if _, err := l.Delete(op.key); err != nil {
					return false
				}
				delete(model, op.key)
			}
		}
		if _, err := l.Compact(); err != nil {
			return false
		}
		if err := l.RebuildIndex(); err != nil {
			return false
		}
		if _, err := l.Verify(); err != nil {
			return false
		}
		if l.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := l.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
