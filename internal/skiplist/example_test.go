package skiplist_test

import (
	"fmt"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
)

// The Section 4.1 flow: a lock-free map needs NO crash-consistency code
// at all — crash with a TSP rescue, reopen from the root, keep going.
func Example() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, _ := pheap.Format(dev)
	list, _ := skiplist.New(heap, 8)
	heap.SetRoot(list.Ptr())

	list.Put(3, 30)
	list.Put(1, 10)
	list.Inc(3, 3)

	dev.CrashRescue()
	dev.Restart()

	heap2, _ := pheap.Open(dev)
	list2, _ := skiplist.Open(heap2, heap2.Root())
	list2.Range(func(k, v uint64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 10
	// 3 33
}

// Ordered scans are the skip list's structural advantage over the hash
// map.
func ExampleList_RangeBetween() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, _ := pheap.Format(dev)
	list, _ := skiplist.New(heap, 8)
	for k := uint64(0); k < 100; k += 10 {
		list.Put(k, k)
	}
	list.RangeBetween(25, 65, func(k, _ uint64) bool {
		fmt.Print(k, " ")
		return true
	})
	fmt.Println()
	// Output: 30 40 50 60
}
