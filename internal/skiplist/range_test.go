package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func TestRangeBetweenBasic(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	for k := uint64(0); k < 100; k += 2 { // even keys only
		mustPut(t, l, k, k*10)
	}
	var got []uint64
	l.RangeBetween(10, 30, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("value for %d = %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRangeBetweenEmptyWindow(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	mustPut(t, l, 5, 1)
	n := 0
	l.RangeBetween(10, 10, func(_, _ uint64) bool { n++; return true })
	l.RangeBetween(20, 10, func(_, _ uint64) bool { n++; return true })
	l.RangeBetween(6, 9, func(_, _ uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty windows visited %d keys", n)
	}
}

func TestRangeBetweenSkipsDeleted(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	for k := uint64(0); k < 20; k++ {
		mustPut(t, l, k, k)
	}
	for k := uint64(5); k < 10; k++ {
		if ok, _ := l.Delete(k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	var got []uint64
	l.RangeBetween(0, 20, func(k, _ uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 15 {
		t.Fatalf("visited %d keys, want 15: %v", len(got), got)
	}
	for _, k := range got {
		if k >= 5 && k < 10 {
			t.Fatalf("deleted key %d visited", k)
		}
	}
}

func TestRangeBetweenEarlyStop(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	for k := uint64(0); k < 50; k++ {
		mustPut(t, l, k, k)
	}
	n := 0
	l.RangeBetween(0, 50, func(_, _ uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMin(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	if _, ok := l.Min(); ok {
		t.Fatal("Min on empty list found a key")
	}
	mustPut(t, l, 42, 1)
	mustPut(t, l, 7, 1)
	mustPut(t, l, 99, 1)
	if k, ok := l.Min(); !ok || k != 7 {
		t.Fatalf("Min = %d,%v want 7", k, ok)
	}
	if ok, _ := l.Delete(7); !ok {
		t.Fatal("Delete failed")
	}
	if k, ok := l.Min(); !ok || k != 42 {
		t.Fatalf("Min after delete = %d,%v want 42", k, ok)
	}
}

// Property: RangeBetween agrees with filtering a model map, for random
// contents and windows.
func TestQuickRangeBetweenMatchesModel(t *testing.T) {
	f := func(raw []uint32, lo8, width uint8) bool {
		_, _, l := newListQuick()
		model := map[uint64]uint64{}
		for _, r := range raw {
			k := uint64(r) % 128
			if r%5 == 0 {
				l.Delete(k)
				delete(model, k)
			} else {
				if _, err := l.Put(k, uint64(r)); err != nil {
					return false
				}
				model[k] = uint64(r)
			}
		}
		lo := uint64(lo8) % 128
		hi := lo + uint64(width)%64
		got := map[uint64]uint64{}
		prev := int64(-1)
		ordered := true
		l.RangeBetween(lo, hi, func(k, v uint64) bool {
			if int64(k) <= prev {
				ordered = false
			}
			prev = int64(k)
			got[k] = v
			return true
		})
		if !ordered {
			return false
		}
		want := map[uint64]uint64{}
		for k, v := range model {
			if k >= lo && k < hi {
				want[k] = v
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// newListQuick builds a list without a *testing.T for quick properties.
func newListQuick() (*nvm.Device, *pheap.Heap, *List) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, _ := pheap.Format(dev)
	l, _ := New(heap, 10)
	heap.SetRoot(l.Ptr())
	return dev, heap, l
}

// Benchmarks for the ordered-scan extension.
func BenchmarkRangeBetween(b *testing.B) {
	l := benchList(b, 1<<14)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(rng.Intn(1 << 14))
		n := 0
		l.RangeBetween(lo, lo+100, func(_, _ uint64) bool { n++; return true })
	}
}
