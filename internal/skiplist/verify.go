package skiplist

import (
	"fmt"

	"tsp/internal/pheap"
)

// VerifyReport summarizes a structural verification pass.
type VerifyReport struct {
	LiveNodes    int // unmarked nodes on level 0
	MarkedNodes  int // logically deleted nodes still physically linked
	IndexedLinks int // upper-level links checked
}

// String renders the report for logs.
func (r VerifyReport) String() string {
	return fmt.Sprintf("skiplist{live=%d marked=%d indexed-links=%d}", r.LiveNodes, r.MarkedNodes, r.IndexedLinks)
}

// Verify checks the structural invariants a recovery observer relies on:
//
//  1. the level-0 chain is strictly sorted by key (no duplicates among
//     unmarked nodes);
//  2. every node reachable at level L>0 is also reachable at level 0
//     (the index is a sub-list of the data list);
//  3. upper-level chains are sorted;
//  4. no node appears at a level at or above its own topLevel.
//
// It must be run on a quiescent list (e.g. at recovery). A nil error
// means a traversal from the root cannot encounter an inconsistency —
// the Section 4.1 guarantee, checked mechanically.
func (l *List) Verify() (VerifyReport, error) {
	var rep VerifyReport
	// Walk level 0, collecting node identity and checking sort order.
	level0 := map[pheap.Ptr]bool{}
	var lastKey uint64
	first := true
	for curr := ref(l.next(l.head, 0)); !curr.IsNil(); {
		level0[curr] = true
		marked := isMarked(l.next(curr, 0))
		k := l.key(curr)
		if marked {
			rep.MarkedNodes++
		} else {
			rep.LiveNodes++
			if !first && k <= lastKey {
				return rep, fmt.Errorf("skiplist: level 0 out of order: %d after %d", k, lastKey)
			}
			lastKey = k
			first = false
		}
		if top := l.top(curr); top < 1 || top > l.maxLevel {
			return rep, fmt.Errorf("skiplist: node %d has topLevel %d", curr, top)
		}
		curr = ref(l.next(curr, 0))
	}
	// Walk the index levels.
	for lvl := 1; lvl < l.maxLevel; lvl++ {
		var prevKey uint64
		firstAt := true
		for curr := ref(l.next(l.head, lvl)); !curr.IsNil(); curr = ref(l.next(curr, lvl)) {
			rep.IndexedLinks++
			if !level0[curr] {
				return rep, fmt.Errorf("skiplist: node %d at level %d not on level 0", curr, lvl)
			}
			if l.top(curr) <= lvl {
				return rep, fmt.Errorf("skiplist: node %d linked at level %d beyond its topLevel %d",
					curr, lvl, l.top(curr))
			}
			k := l.key(curr)
			if !firstAt && k <= prevKey {
				return rep, fmt.Errorf("skiplist: level %d out of order: %d after %d", lvl, k, prevKey)
			}
			prevKey = k
			firstAt = false
		}
	}
	return rep, nil
}

// CompactReport summarizes a Compact pass.
type CompactReport struct {
	Unlinked int // marked nodes physically removed
	Freed    int // node blocks returned to the allocator
}

// Compact physically unlinks every logically deleted node and frees its
// block. It must run on a quiescent list — recovery time is the natural
// moment, where it plays the role the paper assigns to recovery-time
// garbage collection for the non-blocking case study (unreachable nodes
// are also reclaimed by the heap's conservative GC; Compact additionally
// removes still-linked tombstones so that later traversals do not pay
// for them).
func (l *List) Compact() (CompactReport, error) {
	var rep CompactReport
	// Unlink marked nodes at every level, single-threadedly.
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		pred := l.head
		for {
			curr := ref(l.next(pred, lvl))
			if curr.IsNil() {
				break
			}
			if isMarked(l.next(curr, 0)) {
				// Splice curr out of this level.
				succ := ref(l.next(curr, lvl))
				l.heap.Store(pred, nodeNext+lvl, uint64(succ))
				if lvl == 0 {
					if err := l.heap.Free(curr); err != nil {
						return rep, err
					}
					rep.Freed++
					rep.Unlinked++
				}
				continue
			}
			pred = curr
		}
	}
	return rep, nil
}

// RebuildIndex reconstructs all upper-level links from the level-0 chain.
// A crash can leave freshly inserted nodes indexed only partially (their
// upper links were still being CASed in); that is harmless for
// correctness but suboptimal for search. Recovery code may call this on
// a quiescent list to restore the expected O(log n) search paths.
func (l *List) RebuildIndex() error {
	// Clear all index levels.
	for lvl := 1; lvl < l.maxLevel; lvl++ {
		l.heap.Store(l.head, nodeNext+lvl, 0)
	}
	// Re-thread each level: walk level 0 and append nodes whose
	// topLevel admits them.
	tails := make([]pheap.Ptr, l.maxLevel) // last node linked per level
	for i := range tails {
		tails[i] = l.head
	}
	for curr := ref(l.next(l.head, 0)); !curr.IsNil(); curr = ref(l.next(curr, 0)) {
		if isMarked(l.next(curr, 0)) {
			continue
		}
		top := l.top(curr)
		for lvl := 1; lvl < top; lvl++ {
			l.heap.Store(tails[lvl], nodeNext+lvl, uint64(curr))
			l.heap.Store(curr, nodeNext+lvl, 0)
			tails[lvl] = curr
		}
	}
	return nil
}
