package skiplist

import (
	"math/rand"
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func benchList(b *testing.B, prefill int) *List {
	b.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	l, err := New(heap, 16)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(l.Ptr())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < prefill; i++ {
		if _, err := l.Put(uint64(rng.Intn(prefill*2)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return l
}

func BenchmarkGet(b *testing.B) {
	l := benchList(b, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(uint64(i) % (1 << 15))
	}
}

func BenchmarkPutExisting(b *testing.B) {
	l := benchList(b, 1<<14)
	keys := collectKeys(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Put(keys[i%len(keys)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInc(b *testing.B) {
	l := benchList(b, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Inc(uint64(i)%(1<<13), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDeleteCycle(b *testing.B) {
	// Deleted nodes are reclaimed only at quiescence (recovery-time GC);
	// long runs must collect periodically, outside the timed region,
	// exactly as a long-lived deployment would.
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	l, err := New(heap, 16)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(l.Ptr())
	for k := uint64(0); k < 1<<10; k++ {
		if _, err := l.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(1<<20) + uint64(i%256)
		if _, err := l.Put(k, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := l.Delete(k); err != nil {
			b.Fatal(err)
		}
		if (i+1)%(1<<17) == 0 {
			b.StopTimer()
			if _, err := l.Compact(); err != nil {
				b.Fatal(err)
			}
			if _, err := heap.GC(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	l := benchList(b, 1<<13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func collectKeys(l *List) []uint64 {
	var keys []uint64
	l.Range(func(k, _ uint64) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}
