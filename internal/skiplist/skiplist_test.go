package skiplist

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func newList(t *testing.T, words int) (*nvm.Device, *pheap.Heap, *List) {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: words})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	l, err := New(heap, 12)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	heap.SetRoot(l.Ptr())
	return dev, heap, l
}

func mustPut(t *testing.T, l *List, k, v uint64) {
	t.Helper()
	if _, err := l.Put(k, v); err != nil {
		t.Fatalf("Put(%d,%d): %v", k, v, err)
	}
}

func TestPutGetBasic(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	mustPut(t, l, 10, 100)
	mustPut(t, l, 5, 50)
	mustPut(t, l, 20, 200)
	for _, c := range []struct{ k, v uint64 }{{5, 50}, {10, 100}, {20, 200}} {
		got, ok := l.Get(c.k)
		if !ok || got != c.v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", c.k, got, ok, c.v)
		}
	}
	if _, ok := l.Get(15); ok {
		t.Fatal("Get(15) found a missing key")
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	ins, err := l.Put(7, 1)
	if err != nil || !ins {
		t.Fatalf("first Put = %v,%v", ins, err)
	}
	ins, err = l.Put(7, 2)
	if err != nil || ins {
		t.Fatalf("second Put = %v,%v, want update (false)", ins, err)
	}
	if v, _ := l.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d, want 2", v)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestIncInsertsAndAdds(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	if v, err := l.Inc(3, 5); err != nil || v != 5 {
		t.Fatalf("Inc on absent key = %d,%v", v, err)
	}
	if v, err := l.Inc(3, 2); err != nil || v != 7 {
		t.Fatalf("second Inc = %d,%v, want 7", v, err)
	}
}

func TestDelete(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	mustPut(t, l, 1, 10)
	mustPut(t, l, 2, 20)
	mustPut(t, l, 3, 30)
	ok, err := l.Delete(2)
	if err != nil || !ok {
		t.Fatalf("Delete(2) = %v,%v", ok, err)
	}
	if _, found := l.Get(2); found {
		t.Fatal("deleted key still found")
	}
	if ok, _ := l.Delete(2); ok {
		t.Fatal("second Delete(2) returned true")
	}
	if ok, _ := l.Delete(99); ok {
		t.Fatal("Delete of absent key returned true")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify after delete: %v", err)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	mustPut(t, l, 5, 1)
	if ok, _ := l.Delete(5); !ok {
		t.Fatal("Delete failed")
	}
	mustPut(t, l, 5, 2)
	if v, ok := l.Get(5); !ok || v != 2 {
		t.Fatalf("Get after reinsert = %d,%v", v, ok)
	}
}

func TestRangeSortedAscending(t *testing.T) {
	_, _, l := newList(t, 1<<18)
	keys := rand.New(rand.NewSource(1)).Perm(200)
	for _, k := range keys {
		mustPut(t, l, uint64(k), uint64(k)*2)
	}
	var got []uint64
	l.Range(func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("Range: value for %d is %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 200 {
		t.Fatalf("Range visited %d keys, want 200", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Range out of order at %d: %d <= %d", i, got[i], got[i-1])
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	for k := uint64(0); k < 10; k++ {
		mustPut(t, l, k, k)
	}
	n := 0
	l.Range(func(_, _ uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestOpenAttachesToExisting(t *testing.T) {
	_, heap, l := newList(t, 1<<16)
	mustPut(t, l, 42, 4200)
	l2, err := Open(heap, l.Ptr())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if v, ok := l2.Get(42); !ok || v != 4200 {
		t.Fatalf("reopened list Get(42) = %d,%v", v, ok)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	_, heap, _ := newList(t, 1<<16)
	if _, err := Open(heap, pheap.Nil); !errors.Is(err, ErrNotSkipList) {
		t.Fatalf("Open(Nil) = %v", err)
	}
	p, _ := heap.Alloc(descWords)
	if _, err := Open(heap, p); !errors.Is(err, ErrNotSkipList) {
		t.Fatalf("Open(non-descriptor) = %v", err)
	}
}

func TestNewRejectsBadLevels(t *testing.T) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 12})
	heap, _ := pheap.Format(dev)
	if _, err := New(heap, 0); err == nil {
		t.Fatal("New(0 levels) succeeded")
	}
	if _, err := New(heap, MaxLevel+1); err == nil {
		t.Fatal("New(too many levels) succeeded")
	}
}

func TestSurvivesCrashWithRescue(t *testing.T) {
	// The Section 4.1 experiment in miniature: populate, crash with a
	// TSP rescue, reopen from the root, verify integrity and contents.
	dev, heap, l := newList(t, 1<<18)
	want := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		k, v := uint64(rng.Intn(1000)), uint64(i)
		mustPut(t, l, k, v)
		want[k] = v
	}
	_ = heap
	dev.CrashRescue()
	dev.Restart()
	heap2, err := pheap.Open(dev)
	if err != nil {
		t.Fatalf("Open heap: %v", err)
	}
	l2, err := Open(heap2, heap2.Root())
	if err != nil {
		t.Fatalf("Open list: %v", err)
	}
	if _, err := l2.Verify(); err != nil {
		t.Fatalf("Verify after crash: %v", err)
	}
	for k, v := range want {
		got, ok := l2.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) after crash = %d,%v want %d", k, got, ok, v)
		}
	}
	if l2.Len() != len(want) {
		t.Fatalf("Len after crash = %d, want %d", l2.Len(), len(want))
	}
}

func TestConcurrentInsertDisjointKeys(t *testing.T) {
	_, _, l := newList(t, 1<<20)
	const threads, per = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(g*per + i)
				if _, err := l.Put(k, k+1); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := l.Len(); got != threads*per {
		t.Fatalf("Len = %d, want %d", got, threads*per)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for k := uint64(0); k < threads*per; k++ {
		if v, ok := l.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentIncSameKeysLosesNothing(t *testing.T) {
	_, _, l := newList(t, 1<<20)
	const threads, per, keys = 8, 500, 16
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				if _, err := l.Inc(uint64(rng.Intn(keys)), 1); err != nil {
					t.Errorf("Inc: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var total uint64
	l.Range(func(_, v uint64) bool { total += v; return true })
	if total != threads*per {
		t.Fatalf("sum of values = %d, want %d (lost increments)", total, threads*per)
	}
}

func TestConcurrentMixedWorkloadIntegrity(t *testing.T) {
	_, _, l := newList(t, 1<<20)
	const threads, per = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < per; i++ {
				k := uint64(rng.Intn(200))
				switch rng.Intn(4) {
				case 0:
					if _, err := l.Put(k, k); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if _, err := l.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				case 2:
					l.Get(k)
				case 3:
					if _, err := l.Inc(k, 1); err != nil {
						t.Errorf("Inc: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify after mixed workload: %v", err)
	}
}

func TestCompactRemovesTombstones(t *testing.T) {
	_, heap, l := newList(t, 1<<18)
	for k := uint64(0); k < 100; k++ {
		mustPut(t, l, k, k)
	}
	// Delete WITHOUT letting find() unlink (Delete does unlink via
	// find; to leave tombstones we mark manually at level 0 only for a
	// few nodes). Easier: delete normally, then check Compact is a
	// no-op-safe pass, then verify Free reuse.
	for k := uint64(0); k < 100; k += 2 {
		if ok, err := l.Delete(k); !ok || err != nil {
			t.Fatalf("Delete(%d) = %v,%v", k, ok, err)
		}
	}
	rep, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	_ = rep // Delete may already have unlinked everything; both are fine.
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify after Compact: %v", err)
	}
	if l.Len() != 50 {
		t.Fatalf("Len = %d, want 50", l.Len())
	}
	chk, err := heap.Check()
	if err != nil {
		t.Fatalf("heap Check: %v", err)
	}
	_ = chk
}

func TestCompactFreesMarkedButLinkedNodes(t *testing.T) {
	// Force a tombstone: mark a node manually without unlinking, as a
	// crash mid-Delete would leave it.
	dev, heap, l := newList(t, 1<<16)
	mustPut(t, l, 1, 10)
	mustPut(t, l, 2, 20)
	mustPut(t, l, 3, 30)
	// Find node 2 and mark its level-0 next pointer by hand.
	var node2 pheap.Ptr
	for curr := ref(l.next(l.head, 0)); !curr.IsNil(); curr = ref(l.next(curr, 0)) {
		if l.key(curr) == 2 {
			node2 = curr
			break
		}
	}
	if node2.IsNil() {
		t.Fatal("node 2 not found")
	}
	nxt := l.next(node2, 0)
	if !dev.CAS(l.nextAddr(node2, 0), nxt, nxt|markBit) {
		t.Fatal("manual mark failed")
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("marked node still visible")
	}
	rep, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rep.Freed != 1 {
		t.Fatalf("Compact freed %d, want 1", rep.Freed)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	_ = heap
}

func TestRebuildIndex(t *testing.T) {
	_, _, l := newList(t, 1<<18)
	for k := uint64(0); k < 200; k++ {
		mustPut(t, l, k, k)
	}
	// Wreck the index levels (simulating partially-linked inserts), then
	// rebuild and verify.
	for lvl := 1; lvl < l.maxLevel; lvl++ {
		l.heap.Store(l.head, nodeNext+lvl, 0)
	}
	if err := l.RebuildIndex(); err != nil {
		t.Fatalf("RebuildIndex: %v", err)
	}
	rep, err := l.Verify()
	if err != nil {
		t.Fatalf("Verify after rebuild: %v", err)
	}
	if rep.LiveNodes != 200 {
		t.Fatalf("live = %d, want 200", rep.LiveNodes)
	}
	if rep.IndexedLinks == 0 {
		t.Fatal("rebuild produced an empty index")
	}
	for k := uint64(0); k < 200; k++ {
		if v, ok := l.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) after rebuild = %d,%v", k, v, ok)
		}
	}
}

func TestVerifyDetectsOutOfOrder(t *testing.T) {
	_, _, l := newList(t, 1<<16)
	mustPut(t, l, 1, 1)
	mustPut(t, l, 2, 2)
	// Corrupt: swap the keys of the two nodes.
	n1 := ref(l.next(l.head, 0))
	n2 := ref(l.next(n1, 0))
	l.heap.Store(n1, nodeKey, 9)
	l.heap.Store(n2, nodeKey, 1)
	if _, err := l.Verify(); err == nil {
		t.Fatal("Verify accepted an out-of-order list")
	}
}

func TestOperationsAfterCrashReturnErrCrashed(t *testing.T) {
	dev, _, l := newList(t, 1<<16)
	mustPut(t, l, 1, 1)
	dev.CrashRescue()
	if _, err := l.Put(2, 2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Put after crash = %v, want ErrCrashed", err)
	}
	if _, err := l.Inc(1, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Inc after crash = %v, want ErrCrashed", err)
	}
	if _, err := l.Delete(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Delete after crash = %v, want ErrCrashed", err)
	}
}

func TestGetDoesNotWrite(t *testing.T) {
	dev, _, l := newList(t, 1<<16)
	mustPut(t, l, 1, 1)
	mustPut(t, l, 5, 5)
	before := dev.Stats()
	l.Get(1)
	l.Get(5)
	l.Get(9)
	delta := dev.Stats().Sub(before)
	if delta.Stores != 0 || delta.CAS != 0 {
		t.Fatalf("Get wrote to the device: %s", delta)
	}
}

func TestHeapGCKeepsListReachable(t *testing.T) {
	_, heap, l := newList(t, 1<<18)
	for k := uint64(0); k < 50; k++ {
		mustPut(t, l, k, k)
	}
	rep, err := heap.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.BlocksFreed != 0 {
		t.Fatalf("GC freed %d blocks of a fully reachable list", rep.BlocksFreed)
	}
	if l.Len() != 50 {
		t.Fatal("list damaged by GC")
	}
}

func TestHeapGCReclaimsDeletedNodes(t *testing.T) {
	// After Delete + physical unlink, nodes are unreachable; the
	// conservative GC must reclaim them at recovery time... unless a
	// stale on-heap word still references them. Compact first to clear
	// tombstones deterministically.
	_, heap, l := newList(t, 1<<18)
	for k := uint64(0); k < 20; k++ {
		mustPut(t, l, k, k)
	}
	for k := uint64(0); k < 20; k += 2 {
		if ok, _ := l.Delete(k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := heap.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatalf("Verify after GC: %v", err)
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
}
