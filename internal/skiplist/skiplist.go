// Package skiplist implements the paper's non-blocking case study: a
// lock-free skip-list map from uint64 keys to uint64 values (after
// Herlihy & Shavit, "The Art of Multiprocessor Programming", the
// algorithm family of the Dybnis nbds library the paper uses) living
// entirely in a persistent heap and manipulated through simulated-NVM
// atomic words.
//
// The structure takes NO measures for crash consistency — no logging, no
// flushing, nothing. That is the point of Section 4.1: because every
// linearization point is a single atomic word operation and the
// suspension of any subset of threads cannot block the rest, a crash
// under Timely Sufficient Persistence (which preserves every issued
// store) leaves the heap in a state from which a "recovery observer" can
// simply resume: traversals from the root encounter a valid skip list.
// Nodes whose insertion had linked only the lower levels are present
// (the bottom-level CAS is the linearization point); nodes allocated but
// never linked are unreachable and are reclaimed by the recovery-time
// conservative GC.
package skiplist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

// MaxLevel is the maximum number of levels a list may be built with.
const MaxLevel = 24

// markBit tags a node's next pointer to flag the node as logically
// deleted. Heap word addresses are far below 2^63, so the bit is free.
const markBit uint64 = 1 << 63

func isMarked(w uint64) bool { return w&markBit != 0 }
func ref(w uint64) pheap.Ptr { return pheap.Ptr(w &^ markBit) }

// Descriptor layout (payload words of the descriptor block):
const (
	descMagicWord = 0
	descLevelWord = 1
	descHeadWord  = 2
	descWords     = 3

	descMagic = 0x534b_4950_4c53_5431 // "SKIPLST1"
)

// Node layout (payload words):
//
//	0: key
//	1: value
//	2: topLevel (number of next pointers)
//	3..3+topLevel-1: next pointers (with markBit)
const (
	nodeKey   = 0
	nodeValue = 1
	nodeTop   = 2
	nodeNext  = 3
)

// Errors returned by the package.
var (
	ErrNotSkipList = errors.New("skiplist: pointer does not reference a skip-list descriptor")
	ErrCrashed     = errors.New("skiplist: device crashed (thread terminated)")
)

// List is a handle onto a persistent lock-free skip list. Handles are
// stateless apart from the RNG; any number may be created over the same
// descriptor, and all methods are safe for concurrent use.
type List struct {
	heap     *pheap.Heap
	dev      *nvm.Device
	desc     pheap.Ptr
	head     pheap.Ptr
	maxLevel int
	seed     atomic.Uint64
	scratch  sync.Pool // *pathScratch, reused across operations
}

// pathScratch holds the preds/succs arrays find fills; pooled to keep
// the hot paths allocation-free.
type pathScratch struct {
	preds, succs []pheap.Ptr
}

func (l *List) getScratch() *pathScratch {
	if s, ok := l.scratch.Get().(*pathScratch); ok {
		return s
	}
	return &pathScratch{
		preds: make([]pheap.Ptr, l.maxLevel),
		succs: make([]pheap.Ptr, l.maxLevel),
	}
}

func (l *List) putScratch(s *pathScratch) { l.scratch.Put(s) }

// New allocates a fresh skip list with the given maximum level and
// returns its handle. The descriptor pointer (Ptr) is what callers link
// into their root structure.
func New(heap *pheap.Heap, maxLevel int) (*List, error) {
	if maxLevel < 1 || maxLevel > MaxLevel {
		return nil, fmt.Errorf("skiplist: maxLevel %d out of [1,%d]", maxLevel, MaxLevel)
	}
	head, err := heap.Alloc(nodeNext + maxLevel)
	if err != nil {
		return nil, err
	}
	heap.Store(head, nodeTop, uint64(maxLevel))
	// head's key/value are never consulted; next pointers start nil.
	desc, err := heap.Alloc(descWords)
	if err != nil {
		return nil, err
	}
	heap.Store(desc, descLevelWord, uint64(maxLevel))
	heap.Store(desc, descHeadWord, uint64(head))
	heap.Store(desc, descMagicWord, descMagic) // magic last: descriptor valid once visible
	l := &List{heap: heap, dev: heap.Device(), desc: desc, head: head, maxLevel: maxLevel}
	l.seed.Store(uint64(desc) * 0x9e3779b97f4a7c15)
	return l, nil
}

// Open attaches to an existing skip list via its descriptor pointer.
func Open(heap *pheap.Heap, desc pheap.Ptr) (*List, error) {
	if desc.IsNil() {
		return nil, ErrNotSkipList
	}
	if heap.Load(desc, descMagicWord) != descMagic {
		return nil, ErrNotSkipList
	}
	maxLevel := int(heap.Load(desc, descLevelWord))
	if maxLevel < 1 || maxLevel > MaxLevel {
		return nil, fmt.Errorf("skiplist: descriptor has maxLevel %d", maxLevel)
	}
	l := &List{
		heap:     heap,
		dev:      heap.Device(),
		desc:     desc,
		head:     pheap.Ptr(heap.Load(desc, descHeadWord)),
		maxLevel: maxLevel,
	}
	l.seed.Store(uint64(desc)*0x9e3779b97f4a7c15 + 1)
	return l, nil
}

// Ptr returns the descriptor pointer for linking into root structures.
func (l *List) Ptr() pheap.Ptr { return l.desc }

// nextAddr returns the device address of node n's level-lvl next pointer.
func (l *List) nextAddr(n pheap.Ptr, lvl int) nvm.Addr {
	return n.Addr() + nvm.Addr(nodeNext+lvl)
}

func (l *List) key(n pheap.Ptr) uint64 { return l.heap.Load(n, nodeKey) }
func (l *List) top(n pheap.Ptr) int    { return int(l.heap.Load(n, nodeTop)) }
func (l *List) next(n pheap.Ptr, lvl int) uint64 {
	return l.dev.Load(l.nextAddr(n, lvl))
}

// randomLevel draws a geometric level in [1, maxLevel] from a lock-free
// splitmix stream.
func (l *List) randomLevel() int {
	x := l.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1
	for x&1 == 1 && lvl < l.maxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// find locates the position of key at every level, helping to physically
// unlink marked nodes along the way (the Harris/Herlihy-Shavit helping
// protocol). It fills preds and succs and reports whether an unmarked
// node with the key sits at level 0. It returns ErrCrashed if the device
// has crashed, so spinning threads terminate like their SIGKILLed
// counterparts.
func (l *List) find(key uint64, preds, succs []pheap.Ptr) (bool, error) {
retry:
	for {
		if l.dev.Crashed() {
			return false, ErrCrashed
		}
		pred := l.head
		for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
			curr := ref(l.next(pred, lvl))
			for {
				if curr.IsNil() {
					break
				}
				succ := l.next(curr, lvl)
				for isMarked(succ) {
					// curr is logically deleted: splice it out.
					if !l.dev.CAS(l.nextAddr(pred, lvl), uint64(curr), uint64(ref(succ))) {
						if l.dev.Crashed() {
							return false, ErrCrashed
						}
						continue retry
					}
					curr = ref(l.next(pred, lvl))
					if curr.IsNil() {
						break
					}
					succ = l.next(curr, lvl)
				}
				if curr.IsNil() {
					break
				}
				if l.key(curr) < key {
					pred = curr
					curr = ref(succ)
				} else {
					break
				}
			}
			preds[lvl] = pred
			succs[lvl] = curr
		}
		found := !succs[0].IsNil() && l.key(succs[0]) == key
		return found, nil
	}
}

// Get returns the value stored under key. The traversal is wait-free: it
// skips logically deleted nodes without helping, so it never writes.
func (l *List) Get(key uint64) (uint64, bool) {
	pred := l.head
	var curr pheap.Ptr
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr = ref(l.next(pred, lvl))
		for !curr.IsNil() {
			succ := l.next(curr, lvl)
			if isMarked(succ) {
				curr = ref(succ) // skip deleted node
				continue
			}
			if l.key(curr) < key {
				pred = curr
				curr = ref(succ)
				continue
			}
			break
		}
	}
	if curr.IsNil() || l.key(curr) != key || isMarked(l.next(curr, 0)) {
		return 0, false
	}
	return l.heap.Load(curr, nodeValue), true
}

// Put sets key to val, inserting a node if absent. It returns true if a
// new node was inserted, false if an existing node was updated.
func (l *List) Put(key, val uint64) (bool, error) {
	sc := l.getScratch()
	defer l.putScratch(sc)
	preds, succs := sc.preds, sc.succs
	for {
		found, err := l.find(key, preds, succs)
		if err != nil {
			return false, err
		}
		if found {
			// Single-word value update: atomic, and a fine linearization
			// point on its own.
			l.heap.Store(succs[0], nodeValue, val)
			return false, nil
		}
		inserted, err := l.insert(key, val, preds, succs)
		if err != nil {
			return false, err
		}
		if inserted {
			return true, nil
		}
		// Lost the race to another inserter of the same key; retry.
	}
}

// Inc atomically adds delta to the value under key, inserting the key
// with value delta if absent. It returns the new value.
func (l *List) Inc(key, delta uint64) (uint64, error) {
	sc := l.getScratch()
	defer l.putScratch(sc)
	preds, succs := sc.preds, sc.succs
	for {
		found, err := l.find(key, preds, succs)
		if err != nil {
			return 0, err
		}
		if found {
			return l.heap.Add(succs[0], nodeValue, delta), nil
		}
		inserted, err := l.insert(key, delta, preds, succs)
		if err != nil {
			return 0, err
		}
		if inserted {
			return delta, nil
		}
	}
}

// insert tries to link a fresh node for key between preds and succs. It
// returns false (without error) if the bottom-level CAS lost a race and
// the caller should re-find and retry.
func (l *List) insert(key, val uint64, preds, succs []pheap.Ptr) (bool, error) {
	topLevel := l.randomLevel()
	node, err := l.heap.Alloc(nodeNext + topLevel)
	if err != nil {
		return false, err
	}
	l.heap.Store(node, nodeKey, key)
	l.heap.Store(node, nodeValue, val)
	l.heap.Store(node, nodeTop, uint64(topLevel))
	for lvl := 0; lvl < topLevel; lvl++ {
		l.heap.Store(node, nodeNext+lvl, uint64(succs[lvl]))
	}
	// The bottom-level CAS is the linearization point — and, under TSP,
	// also the durability point: a crash immediately after it leaves the
	// node reachable; a crash before it leaves the node unreachable (the
	// recovery GC reclaims the block). No intermediate state is visible
	// to the recovery observer.
	if !l.dev.CAS(l.nextAddr(preds[0], 0), uint64(succs[0]), uint64(node)) {
		if l.dev.Crashed() {
			return false, ErrCrashed
		}
		// The block is private garbage now; hand it straight back.
		_ = l.heap.Free(node)
		return false, nil
	}
	// Link the index levels. Failures here never affect correctness —
	// the node is already in the set — only search speed, so a crash
	// mid-way is harmless (Section 4.1's partial-upper-links case).
	for lvl := 1; lvl < topLevel; lvl++ {
		for {
			if l.dev.Crashed() {
				return true, nil // node is linked; thread dies here
			}
			cur := l.next(node, lvl)
			if isMarked(cur) {
				return true, nil // concurrently deleted; stop indexing
			}
			if ref(cur) != succs[lvl] {
				if !l.dev.CAS(l.nextAddr(node, lvl), cur, uint64(succs[lvl])) {
					continue
				}
			}
			if l.dev.CAS(l.nextAddr(preds[lvl], lvl), uint64(succs[lvl]), uint64(node)) {
				break
			}
			found, err := l.find(key, preds, succs)
			if err != nil {
				return true, nil
			}
			if !found || succs[0] != node {
				return true, nil // deleted while indexing
			}
		}
	}
	return true, nil
}

// Delete removes key from the map. It returns false if the key was
// absent (or already being deleted by another thread). Deleted nodes are
// unlinked but never freed during the run — a concurrent traversal may
// still be reading them; they become unreachable garbage that the
// recovery-time conservative GC reclaims, which is exactly the
// reclamation story the paper's persistent-heap model prescribes.
func (l *List) Delete(key uint64) (bool, error) {
	sc := l.getScratch()
	defer l.putScratch(sc)
	preds, succs := sc.preds, sc.succs
	found, err := l.find(key, preds, succs)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	node := succs[0]
	topLevel := l.top(node)
	// Mark the index levels top-down.
	for lvl := topLevel - 1; lvl >= 1; lvl-- {
		for {
			succ := l.next(node, lvl)
			if isMarked(succ) {
				break
			}
			if l.dev.CAS(l.nextAddr(node, lvl), succ, succ|markBit) {
				break
			}
			if l.dev.Crashed() {
				return false, ErrCrashed
			}
		}
	}
	// Marking level 0 is the linearization point.
	for {
		succ := l.next(node, 0)
		if isMarked(succ) {
			return false, nil // someone else deleted it first
		}
		if l.dev.CAS(l.nextAddr(node, 0), succ, succ|markBit) {
			// Physically unlink via find's helping; best effort.
			_, _ = l.find(key, preds, succs)
			return true, nil
		}
		if l.dev.Crashed() {
			return false, ErrCrashed
		}
	}
}

// Range calls fn for every live (unmarked) key/value pair in ascending
// key order until fn returns false. It is a snapshot-free traversal:
// concurrent updates may or may not be observed, exactly like the C
// original.
func (l *List) Range(fn func(key, val uint64) bool) {
	curr := ref(l.next(l.head, 0))
	for !curr.IsNil() {
		succ := l.next(curr, 0)
		if !isMarked(succ) {
			if !fn(l.key(curr), l.heap.Load(curr, nodeValue)) {
				return
			}
		}
		curr = ref(succ)
	}
}

// RangeBetween calls fn for every live key in [lo, hi) in ascending
// order until fn returns false. Unlike the hash map, the skip list
// supports ordered scans natively — the index levels find lo in
// O(log n) and the bottom level walks forward from there.
func (l *List) RangeBetween(lo, hi uint64, fn func(key, val uint64) bool) {
	if lo >= hi {
		return
	}
	// Descend the index to the last node with key < lo.
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for {
			curr := ref(l.next(pred, lvl))
			if curr.IsNil() || l.key(curr) >= lo {
				break
			}
			pred = curr
		}
	}
	// Walk the bottom level through the window.
	for curr := ref(l.next(pred, 0)); !curr.IsNil(); curr = ref(l.next(curr, 0)) {
		k := l.key(curr)
		if k >= hi {
			return
		}
		if isMarked(l.next(curr, 0)) || k < lo {
			continue
		}
		if !fn(k, l.heap.Load(curr, nodeValue)) {
			return
		}
	}
}

// CountBetween counts live keys in [lo, hi). Like RangeBetween the
// index levels find lo in O(log n); the count itself walks the bottom
// level, so the cost is O(log n + result).
func (l *List) CountBetween(lo, hi uint64) int {
	n := 0
	l.RangeBetween(lo, hi, func(_, _ uint64) bool { n++; return true })
	return n
}

// Min returns the smallest live key, if any.
func (l *List) Min() (uint64, bool) {
	for curr := ref(l.next(l.head, 0)); !curr.IsNil(); curr = ref(l.next(curr, 0)) {
		if !isMarked(l.next(curr, 0)) {
			return l.key(curr), true
		}
	}
	return 0, false
}

// Len counts live keys by traversal.
func (l *List) Len() int {
	n := 0
	l.Range(func(_, _ uint64) bool { n++; return true })
	return n
}

// MaxLevelConfigured returns the list's level bound.
func (l *List) MaxLevelConfigured() int { return l.maxLevel }
