package txkv

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

type env struct {
	dev  *nvm.Device
	heap *pheap.Heap
	rt   *atlas.Runtime
	s    *Store
}

func newEnv(t *testing.T, mode atlas.Mode) *env {
	t.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, 256, 16) // 16 stripes: multi-stripe txns are common
	if err != nil {
		t.Fatal(err)
	}
	heap.SetRoot(s.Ptr())
	dev.FlushAll()
	return &env{dev: dev, heap: heap, rt: rt, s: s}
}

func (e *env) thread(t *testing.T) *atlas.Thread {
	t.Helper()
	th, err := e.rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return th
}

// recover crashes, restarts, recovers and reattaches.
func (e *env) recover(t *testing.T, frac float64, mode atlas.Mode) (*Store, *atlas.Thread) {
	t.Helper()
	e.dev.Crash(nvm.CrashOptions{RescueFraction: frac, Seed: 3})
	e.dev.Restart()
	heap, err := pheap.Open(e.dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atlas.Recover(heap); err != nil {
		t.Fatal(err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(rt, heap.Root())
	if err != nil {
		t.Fatal(err)
	}
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return s, th
}

func TestBasicTransaction(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	err := e.s.Update(th, []uint64{1, 2, 3}, func(tx *Txn) error {
		if err := tx.Put(1, 100); err != nil {
			return err
		}
		if err := tx.Put(2, 200); err != nil {
			return err
		}
		// Read-your-writes.
		v, ok, err := tx.Get(1)
		if err != nil || !ok || v != 100 {
			t.Errorf("read-your-writes: %d,%v,%v", v, ok, err)
		}
		// Absent key reads as absent.
		if _, ok, _ := tx.Get(3); ok {
			t.Error("absent key found")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	v, ok, _ := e.s.Map().Get(th, 2)
	if !ok || v != 200 {
		t.Fatalf("committed value = %d,%v", v, ok)
	}
}

func TestAbortAppliesNothing(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	e.s.Update(th, []uint64{5}, func(tx *Txn) error { return tx.Put(5, 1) })
	boom := errors.New("boom")
	err := e.s.Update(th, []uint64{5, 6}, func(tx *Txn) error {
		tx.Put(5, 999)
		tx.Put(6, 999)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, _, _ := e.s.Map().Get(th, 5); v != 1 {
		t.Fatalf("aborted write applied: %d", v)
	}
	if _, ok, _ := e.s.Map().Get(th, 6); ok {
		t.Fatal("aborted insert applied")
	}
}

func TestUndeclaredKeyRejected(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	err := e.s.Update(th, []uint64{1}, func(tx *Txn) error {
		return tx.Put(2, 1)
	})
	if !errors.Is(err, ErrUndeclaredKey) {
		t.Fatalf("err = %v, want ErrUndeclaredKey", err)
	}
	err = e.s.Update(th, []uint64{1}, func(tx *Txn) error {
		_, _, err := tx.Get(99)
		return err
	})
	if !errors.Is(err, ErrUndeclaredKey) {
		t.Fatalf("Get err = %v, want ErrUndeclaredKey", err)
	}
}

func TestDeleteInTransaction(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	e.s.Update(th, []uint64{7, 8}, func(tx *Txn) error {
		tx.Put(7, 70)
		tx.Put(8, 80)
		return nil
	})
	e.s.Update(th, []uint64{7, 8}, func(tx *Txn) error {
		if err := tx.Delete(7); err != nil {
			return err
		}
		// The delete is visible within the transaction.
		if _, ok, _ := tx.Get(7); ok {
			t.Error("deleted key still visible in txn")
		}
		return tx.Put(8, 88)
	})
	if _, ok, _ := e.s.Map().Get(th, 7); ok {
		t.Fatal("delete not applied")
	}
	if v, _, _ := e.s.Map().Get(th, 8); v != 88 {
		t.Fatalf("update not applied: %d", v)
	}
	if _, err := e.s.Map().Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestViewRejectsWrites(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	err := e.s.View(th, []uint64{1}, func(tx *Txn) error {
		return tx.Put(1, 1)
	})
	if err == nil {
		t.Fatal("View accepted a write")
	}
}

// The headline property: a crash mid-commit rolls back the ENTIRE
// multi-key transaction, even across stripes.
func TestCrashMidCommitRollsBackWholeTransaction(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	th := e.thread(t)
	// Committed state: two accounts across different stripes.
	if err := e.s.Update(th, []uint64{10, 200}, func(tx *Txn) error {
		tx.Put(10, 1000)
		tx.Put(200, 1000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A transfer whose commit the crash interrupts between the two
	// writes: arm the crash a couple of stores into the apply phase.
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.s.Update(th, []uint64{10, 200}, func(tx *Txn) error {
			tx.Add(10, ^uint64(499)) // -500 in two's complement
			tx.Add(200, 500)
			// Arm: the apply phase will issue several stores (undo
			// records are not store-class... they ARE: StoreBlock).
			// Fire after the first data store of the apply.
			e.dev.ArmCrashAfter(2, nvm.CrashOptions{RescueFraction: 1})
			return nil
		})
	}()
	<-done

	if !e.dev.Crashed() {
		t.Skip("apply finished before the armed crash; offsets shifted")
	}
	s2, th2 := e.recover(t, 1, atlas.ModeTSP)
	v1, _, _ := s2.Map().Get(th2, 10)
	v2, _, _ := s2.Map().Get(th2, 200)
	if v1 != 1000 || v2 != 1000 {
		t.Fatalf("partial transfer survived: %d/%d, want 1000/1000", v1, v2)
	}
	if _, err := s2.Map().Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestCompletedTransactionSurvivesCrash(t *testing.T) {
	for _, tc := range []struct {
		mode atlas.Mode
		frac float64
	}{
		{atlas.ModeTSP, 1},
		{atlas.ModeNonTSP, 0},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			e := newEnv(t, tc.mode)
			th := e.thread(t)
			if err := e.s.Update(th, []uint64{1, 2, 3}, func(tx *Txn) error {
				tx.Put(1, 11)
				tx.Put(2, 22)
				tx.Put(3, 33)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			s2, th2 := e.recover(t, tc.frac, tc.mode)
			for k, want := range map[uint64]uint64{1: 11, 2: 22, 3: 33} {
				if v, ok, _ := s2.Map().Get(th2, k); !ok || v != want {
					t.Fatalf("key %d = %d,%v want %d", k, v, ok, want)
				}
			}
		})
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	e := newEnv(t, atlas.ModeTSP)
	const accounts, initial = 32, 1000
	setup := e.thread(t)
	keys := make([]uint64, accounts)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := e.s.Update(setup, keys, func(tx *Txn) error {
		for _, k := range keys {
			tx.Put(k, initial)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := e.rt.NewThread()
			if err != nil {
				t.Errorf("NewThread: %v", err)
				return
			}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				err := e.s.Update(th, []uint64{from, to}, func(tx *Txn) error {
					fv, _, err := tx.Get(from)
					if err != nil {
						return err
					}
					if fv < 10 {
						return errors.New("insufficient funds") // abort
					}
					if err := tx.Put(from, fv-10); err != nil {
						return err
					}
					_, err = tx.Add(to, 10)
					return err
				})
				if err != nil && err.Error() != "insufficient funds" {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var total uint64
	e.s.Map().Range(func(_, v uint64) bool { total += v; return true })
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money created or destroyed)", total, accounts*initial)
	}
	if _, err := e.s.Map().Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// The counterpoint: WITHOUT Atlas (ModeOff), a crash mid-apply tears the
// transaction — money disappears. This is the hazard the runtime exists
// to close; observing it confirms the fortified result above is not
// vacuous.
func TestModeOffCrashMidApplyTearsTransaction(t *testing.T) {
	sawTorn := false
	for seed := uint64(1); seed <= 20 && !sawTorn; seed++ {
		e := newEnv(t, atlas.ModeOff)
		th := e.thread(t)
		if err := e.s.Update(th, []uint64{10, 200}, func(tx *Txn) error {
			tx.Put(10, 1000)
			tx.Put(200, 1000)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Transfer 500 with a crash armed somewhere inside the apply
		// phase (ModeOff has no log records, so the store offsets differ
		// from the fortified case; sweep a few).
		e.s.Update(th, []uint64{10, 200}, func(tx *Txn) error {
			fv, _, _ := tx.Get(10)
			tx.Put(10, fv-500)
			tx.Add(200, 500)
			e.dev.ArmCrashAfter(seed%5, nvm.CrashOptions{RescueFraction: 1})
			return nil
		})
		if !e.dev.Crashed() {
			continue
		}
		s2, th2 := e.recover(t, 1, atlas.ModeOff)
		v1, _, _ := s2.Map().Get(th2, 10)
		v2, _, _ := s2.Map().Get(th2, 200)
		if v1+v2 != 2000 {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Skip("no torn transfer observed; crash offsets shifted")
	}
}

// Property: random multi-key transactions with random crash points
// always recover to transaction-atomic state (every txn all-or-nothing).
func TestRandomCrashPointsTransactionAtomicity(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		e := newEnv(t, atlas.ModeTSP)
		th := e.thread(t)
		rng := rand.New(rand.NewSource(int64(trial)))

		// Model: apply each txn to the model only when Update returns.
		model := map[uint64]uint64{}
		e.dev.ArmCrashAfter(uint64(rng.Intn(200)), nvm.CrashOptions{RescueFraction: 1})
		for i := 0; i < 50 && !e.dev.Crashed(); i++ {
			k1, k2 := uint64(rng.Intn(20)), uint64(20+rng.Intn(20))
			v1, v2 := rng.Uint64()%1000, rng.Uint64()%1000
			err := e.s.Update(th, []uint64{k1, k2}, func(tx *Txn) error {
				if err := tx.Put(k1, v1); err != nil {
					return err
				}
				return tx.Put(k2, v2)
			})
			if err == nil && !e.dev.Crashed() {
				model[k1], model[k2] = v1, v2
			}
		}
		s2, th2 := e.recover(t, 1, atlas.ModeTSP)
		if _, err := s2.Map().Verify(); err != nil {
			t.Fatalf("trial %d: Verify: %v", trial, err)
		}
		// Every committed (pre-crash-return) transaction must be fully
		// present. (Keys from the in-flight txn may hold either old or
		// rolled-back values; since we only recorded returns that
		// preceded the crash, the model is a lower bound we check
		// exactly: txkv writes to k1,k2 pairs are always overwritten
		// together, so model state must match.)
		for k, want := range model {
			got, ok, _ := s2.Map().Get(th2, k)
			if !ok || got != want {
				t.Fatalf("trial %d: key %d = %d,%v want %d", trial, k, got, ok, want)
			}
		}
	}
}
