package txkv

import (
	"testing"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func benchStore(b *testing.B, mode atlas.Mode) (*Store, *atlas.Thread) {
	b.Helper()
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 22})
	heap, err := pheap.Format(dev)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(rt, 1<<12, 256)
	if err != nil {
		b.Fatal(err)
	}
	heap.SetRoot(s.Ptr())
	th, err := rt.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	// Prefill.
	keys := make([]uint64, 0, 64)
	for k := uint64(0); k < 1<<10; k++ {
		keys = append(keys[:0], k)
		if err := s.Update(th, keys, func(tx *Txn) error { return tx.Put(k, k) }); err != nil {
			b.Fatal(err)
		}
	}
	return s, th
}

// BenchmarkTransfer measures a two-key read-modify-write transaction
// across the three fortification modes — the transactional analogue of
// Table 1's columns.
func BenchmarkTransfer(b *testing.B) {
	for _, mode := range []atlas.Mode{atlas.ModeOff, atlas.ModeTSP, atlas.ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			s, th := benchStore(b, mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from := uint64(i) % (1 << 10)
				to := (from + 7) % (1 << 10)
				if from == to {
					continue
				}
				err := s.Update(th, []uint64{from, to}, func(tx *Txn) error {
					fv, _, err := tx.Get(from)
					if err != nil {
						return err
					}
					if err := tx.Put(from, fv-1); err != nil {
						return err
					}
					_, err = tx.Add(to, 1)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWideTransaction measures an 8-key transaction.
func BenchmarkWideTransaction(b *testing.B) {
	s, th := benchStore(b, atlas.ModeTSP)
	keys := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint64((i + j*37) % (1 << 10))
		}
		err := s.Update(th, keys, func(tx *Txn) error {
			for _, k := range keys {
				if err := tx.Put(k, uint64(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
