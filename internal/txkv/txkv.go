// Package txkv layers failure-atomic multi-key transactions over the
// mutex-based map — the payoff the paper's Section 4.2 machinery makes
// almost free. An Atlas outermost critical section is rolled back as a
// unit, so a transaction that acquires every stripe lock it needs and
// performs all its writes inside ONE OCS is crash-atomic by
// construction: a crash anywhere inside it (even between writes to
// different buckets) rolls the whole transaction back at recovery, and
// under TSP that costs nothing but the undo logging the runtime already
// pays.
//
// Concurrency control is conservative two-phase locking with ordered
// acquisition: the caller declares the transaction's key set up front;
// the affected stripe mutexes are locked in ascending index order (so
// concurrent transactions can never deadlock) and released in reverse
// after commit. Writes are buffered in volatile memory and applied at
// commit while every lock is still held — an aborted transaction
// (callback error) therefore touches nothing, with no runtime rollback
// machinery needed; only a CRASH mid-apply needs rollback, and that is
// exactly what Atlas recovery provides.
package txkv

import (
	"errors"
	"fmt"
	"sort"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/pheap"
)

// Errors returned by the package.
var (
	ErrUndeclaredKey = errors.New("txkv: key not in the transaction's declared set")
	ErrTxnDone       = errors.New("txkv: transaction already finished")
)

// Store is a transactional key-value store.
type Store struct {
	rt *atlas.Runtime
	m  *hashmap.Map
}

// New creates a store with the given bucket shape (see hashmap.New).
func New(rt *atlas.Runtime, buckets, bucketsPerMutex int) (*Store, error) {
	m, err := hashmap.New(rt, buckets, bucketsPerMutex)
	if err != nil {
		return nil, err
	}
	return &Store{rt: rt, m: m}, nil
}

// Open attaches to an existing store via its descriptor pointer.
func Open(rt *atlas.Runtime, desc pheap.Ptr) (*Store, error) {
	m, err := hashmap.Open(rt, desc)
	if err != nil {
		return nil, err
	}
	return &Store{rt: rt, m: m}, nil
}

// Ptr returns the descriptor pointer for linking into root structures.
func (s *Store) Ptr() pheap.Ptr { return s.m.Ptr() }

// Map exposes the underlying map for single-key operations and
// quiescent verification.
func (s *Store) Map() *hashmap.Map { return s.m }

// writeOp is a buffered mutation.
type writeOp struct {
	del bool
	val uint64
}

// Txn is the handle the Update callback works with. It is valid only
// for the duration of the callback.
type Txn struct {
	s        *Store
	t        *atlas.Thread
	declared map[uint64]bool
	writes   map[uint64]writeOp
	order    []uint64 // write application order (deterministic commits)
	done     bool
}

// Get reads key k, observing the transaction's own earlier writes.
func (tx *Txn) Get(k uint64) (uint64, bool, error) {
	if tx.done {
		return 0, false, ErrTxnDone
	}
	if !tx.declared[k] {
		return 0, false, fmt.Errorf("%w: %d", ErrUndeclaredKey, k)
	}
	if op, ok := tx.writes[k]; ok {
		if op.del {
			return 0, false, nil
		}
		return op.val, true, nil
	}
	return tx.s.m.GetLocked(tx.t, k)
}

// Put buffers a write of k = v.
func (tx *Txn) Put(k, v uint64) error {
	if tx.done {
		return ErrTxnDone
	}
	if !tx.declared[k] {
		return fmt.Errorf("%w: %d", ErrUndeclaredKey, k)
	}
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{val: v}
	return nil
}

// Delete buffers a removal of k.
func (tx *Txn) Delete(k uint64) error {
	if tx.done {
		return ErrTxnDone
	}
	if !tx.declared[k] {
		return fmt.Errorf("%w: %d", ErrUndeclaredKey, k)
	}
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{del: true}
	return nil
}

// Add reads, adds delta, and buffers the result; it returns the new
// value.
func (tx *Txn) Add(k, delta uint64) (uint64, error) {
	v, _, err := tx.Get(k)
	if err != nil {
		return 0, err
	}
	nv := v + delta
	if err := tx.Put(k, nv); err != nil {
		return 0, err
	}
	return nv, nil
}

// Update runs fn as a failure-atomic transaction over the declared keys.
// If fn returns an error, nothing is applied and the error is returned.
// If fn succeeds, the buffered writes are applied inside the enclosing
// outermost critical section: a crash before the final stripe unlock
// rolls back every write at recovery; after it, all are durable (under
// the mode's usual guarantees).
func (s *Store) Update(t *atlas.Thread, keys []uint64, fn func(tx *Txn) error) error {
	if t == nil {
		return hashmap.ErrNoThread
	}
	// Collect and sort the distinct stripes; ordered acquisition makes
	// concurrent transactions deadlock-free.
	stripes := map[int]bool{}
	declared := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		declared[k] = true
		stripes[s.m.StripeOf(k)] = true
	}
	order := make([]int, 0, len(stripes))
	for st := range stripes {
		order = append(order, st)
	}
	sort.Ints(order)
	mus := make([]*atlas.Mutex, len(order))
	for i, st := range order {
		mus[i] = s.m.StripeMutex(st)
	}

	// Section holds every stripe for the duration of fn plus the apply
	// phase; the final release closes the OCS and commits.
	return t.Section(mus, func() error {
		tx := &Txn{
			s:        s,
			t:        t,
			declared: declared,
			writes:   map[uint64]writeOp{},
		}
		if err := fn(tx); err != nil {
			tx.done = true
			return err // nothing applied; locks release with no stores made
		}
		tx.done = true
		// Apply the write set inside the OCS, in deterministic order,
		// holding every involved stripe's seqlock odd for the whole
		// apply phase: the *Locked variants do not bump on their own, and
		// a transaction must be atomic to optimistic readers too — a
		// per-write bracket would let a cross-key reader validate between
		// two writes of one transaction.
		if len(tx.order) > 0 {
			for _, st := range order {
				s.m.BeginStripeWrites(st)
			}
			defer func() {
				for _, st := range order {
					s.m.EndStripeWrites(st)
				}
			}()
		}
		for _, k := range tx.order {
			op := tx.writes[k]
			if op.del {
				if _, err := s.m.DeleteLocked(t, k); err != nil {
					return err
				}
				continue
			}
			if err := s.m.PutLocked(t, k, op.val); err != nil {
				return err
			}
		}
		return nil
	})
}

// View runs fn with shared access to the declared keys (same locking as
// Update; the map's stripe mutexes are not reader-writer locks, so a
// view is simply an update that writes nothing).
func (s *Store) View(t *atlas.Thread, keys []uint64, fn func(tx *Txn) error) error {
	return s.Update(t, keys, func(tx *Txn) error {
		if err := fn(tx); err != nil {
			return err
		}
		if len(tx.writes) != 0 {
			return errors.New("txkv: View transaction attempted writes")
		}
		return nil
	})
}
