package txkv_test

import (
	"fmt"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/txkv"
)

// A multi-key transfer as one failure-atomic transaction: all stripe
// locks are taken in order, writes apply inside one outermost critical
// section, and a crash anywhere before the final unlock rolls the whole
// transfer back at recovery.
func Example() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 18})
	heap, _ := pheap.Format(dev)
	rt, _ := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 1})
	bank, _ := txkv.New(rt, 64, 8)
	heap.SetRoot(bank.Ptr())

	th, _ := rt.NewThread()
	bank.Update(th, []uint64{1, 2}, func(tx *txkv.Txn) error {
		tx.Put(1, 500)
		tx.Put(2, 500)
		return nil
	})

	// Transfer 200 from account 1 to account 2.
	bank.Update(th, []uint64{1, 2}, func(tx *txkv.Txn) error {
		from, _, _ := tx.Get(1)
		tx.Put(1, from-200)
		tx.Add(2, 200)
		return nil
	})

	v1, _, _ := bank.Map().Get(th, 1)
	v2, _, _ := bank.Map().Get(th, 2)
	fmt.Println(v1, v2)
	// Output: 300 700
}
