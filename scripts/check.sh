#!/bin/sh
# check.sh — the pre-merge gate: vet everything, then run the
# concurrency-heavy packages (the cache server and the Section 5
# harness, plus the stack constructor they share, and the hashmap whose
# seqlock read path races readers against writers by design) under the
# race detector. The full suite already runs race-clean; this focuses
# the expensive -race pass on the packages that exercise real
# parallelism.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (server + proto + repl + cluster + harness + stack + hashmap)"
go test -race ./internal/cacheserver ./internal/proto ./internal/repl ./internal/cluster ./internal/harness ./internal/stack ./internal/hashmap

echo "== go test ./... (everything else, no race)"
go test ./...

# The replication, wire-codec, and routing packages are the repo's
# protocol surfaces and the ones other repos would import first: every
# exported identifier must carry a doc comment. go vet checks comment
# FORM; this catches absence, which vet does not. Test files are exempt
# — the gate is about the importable API surface.
echo "== exported doc comments (internal/repl + internal/proto + internal/cluster)"
undocumented=$(ls internal/repl/*.go internal/proto/*.go internal/cluster/*.go | grep -v '_test\.go$' | xargs awk '
	FNR == 1 { prev = "" }
	/^func [A-Z]/ || /^func \([^)]*\) [A-Z]/ || /^type [A-Z]/ || /^const [A-Z]/ || /^var [A-Z]/ {
		if (prev !~ /^\/\//) print FILENAME ":" FNR ": " $0
	}
	{ prev = $0 }
')
if [ -n "$undocumented" ]; then
	echo "exported identifiers missing doc comments:" >&2
	echo "$undocumented" >&2
	exit 1
fi

# The telemetry package is the one layer every other layer calls into on
# its hot path; keep its own coverage visible (and atomic-mode clean,
# since its whole point is concurrent counting).
echo "== telemetry coverage (covermode=atomic)"
go test -covermode=atomic -cover ./internal/telemetry

# The wire codec parses attacker-controlled bytes; keep its branch
# coverage visible the same way.
echo "== proto coverage"
go test -cover ./internal/proto

# The routing tier decides which node's durability contract a key
# falls under; keep its coverage visible next to the server's. Floor
# below the current figure, high enough that dropping the proxy or
# migration suites would trip it.
echo "== cluster coverage (floor 75%)"
ccover=$(go test -cover ./internal/cluster | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')
echo "coverage: ${ccover}%"
if awk "BEGIN{exit !($ccover < 75)}"; then
	echo "cluster coverage ${ccover}% below 75% floor" >&2
	exit 1
fi

# The durability-tier surface (epoch clock, overlay, wait barrier) is
# the newest crash-contract machinery: keep the cacheserver package's
# coverage visible so the epoch paths don't silently rot untested.
# Floor chosen below the current figure but high enough that dropping
# the epoch suite would trip it.
echo "== cacheserver coverage (floor 80%)"
cover=$(go test -cover ./internal/cacheserver | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')
echo "coverage: ${cover}%"
if awk "BEGIN{exit !($cover < 80)}"; then
	echo "cacheserver coverage ${cover}% below 80% floor" >&2
	exit 1
fi

# The durability-tier crash campaign, three seeds under the race
# detector: durable and wait-covered writes must always survive a
# crash, relaxed losses must stay above the receipt's epoch frontier.
echo "== durability-tier crash campaign (3x, -race)"
for s in 1 2 3; do
	go run -race ./cmd/faultinject -durability-only -durability-cycles 5 -seed "$s"
done

# The exactly-once retry campaign, three seeds under the race detector:
# a replicated pair under a sessioned retry storm (every mutation
# resent as a lost-ack duplicate), a power failure mid-storm and a
# follower promotion per cycle; no duplicate may ever apply twice.
echo "== exactly-once retry campaign (3x, -race)"
for s in 1 2 3; do
	go run -race ./cmd/faultinject -exactly-once -exactly-once-cycles 2 -seed "$s"
done

# The cluster campaign, three seeds under the race detector: three
# nodes behind the proxy under the duplicate-send storm, one node
# crashed mid-storm, then all of its slots migrated away while traffic
# continues; zero acked-write loss, exactly-once replay on the new
# owners, MOVED correctness on the old one, Eq 1 & 2 on every node.
echo "== cluster crash + rebalance campaign (3x, -race)"
for s in 1 2 3; do
	go run -race ./cmd/faultinject -cluster -cluster-cycles 2 -seed "$s"
done

# The doc-drift gate: docs/PROTOCOL.md (the canonical wire reference)
# must match the live flag set and both adapters' command sets.
echo "== doc drift (docs/PROTOCOL.md vs tspcached -help + adapters)"
sh scripts/check_docs.sh

# Report-only perf gate: diff the working tspbench report (if any)
# against the committed baseline. Never fails the check — single runs
# are too noisy — but a regression prints loudly.
echo "== bench-diff (soft gate)"
sh scripts/bench_diff.sh || true

echo "OK"
