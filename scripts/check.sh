#!/bin/sh
# check.sh — the pre-merge gate: vet everything, then run the
# concurrency-heavy packages (the cache server and the Section 5
# harness, plus the stack constructor they share) under the race
# detector. The full suite already runs race-clean; this focuses the
# expensive -race pass on the packages that exercise real parallelism.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (server + harness + stack)"
go test -race ./internal/cacheserver ./internal/harness ./internal/stack

echo "== go test ./... (everything else, no race)"
go test ./...

echo "OK"
