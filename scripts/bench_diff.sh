#!/bin/sh
# bench_diff.sh — compare the working benchmark reports against their
# committed baselines and flag regressions. Two suites are covered:
#
#   1. The tspbench Table-1 report (BENCH_tspbench.json): per
#      (profile, variant, threads) cell, throughput in Miter/s —
#      higher is better.
#   2. The cacheserver go-bench suite (BENCH_cacheserver.txt, from
#      make bench-cacheserver-baseline): per benchmark, ns/op —
#      lower is better.
#
# By default each baseline is the file committed at HEAD, so the
# comparison is "this working tree vs the last recorded run". The gate
# is SOFT: the script always exits 0 unless BENCH_DIFF_STRICT=1,
# because single-run cells on a shared machine are noisy — the report
# is for eyes, the strict mode for dedicated perf runs.
#
# Usage: bench_diff.sh [current.json] [baseline.json] [threshold_pct]
set -eu

cd "$(dirname "$0")/.."

cur=${1:-BENCH_tspbench.json}
base=${2:-}
thresh=${3:-25}

regressed=0

# --- suite 2: cacheserver go-bench ns/op ---------------------------
# Runs first so a missing tspbench report doesn't skip it. Pulls
# "BenchmarkName-N <iters> <val> ns/op ..." lines out of the text
# report; the sign convention is inverted vs throughput (ns/op going UP
# is the regression).
gob=BENCH_cacheserver.txt
if [ -f "$gob" ] && git cat-file -e "HEAD:$gob" 2>/dev/null; then
	gbase=$(mktemp)
	git show "HEAD:$gob" >"$gbase"
	extract_ns() {
		awk '/ns\/op/ {
			for (i = 1; i <= NF; i++) if ($i == "ns/op") print $1, $(i-1)
		}' "$1"
	}
	tgb=$(mktemp) && tgc=$(mktemp)
	extract_ns "$gbase" >"$tgb"
	extract_ns "$gob" >"$tgc"
	echo "bench-diff: cacheserver suite (ns/op, lower is better)"
	set +e
	awk -v thresh="$thresh" '
		NR == FNR { base[$1] = $2; next }
		{
			if (!($1 in base)) { printf "new      %-42s %20.0f ns/op\n", $1, $2; next }
			b = base[$1] + 0; c = $2 + 0
			if (b <= 0) next
			pct = (c / b - 1) * 100
			tag = "ok      "
			if (pct > thresh) { tag = "REGRESS "; bad++ }
			else if (pct < -thresh) tag = "improve "
			printf "%s %-42s %10.0f -> %10.0f ns/op  %+7.1f%%\n", tag, $1, b, c, pct
		}
		END { exit (bad > 0 ? 10 : 0) }
	' "$tgb" "$tgc"
	[ $? -eq 10 ] && regressed=1
	set -e
	rm -f "$gbase" "$tgb" "$tgc"
else
	echo "bench-diff: no committed $gob baseline; skipping cacheserver suite"
fi

if [ ! -f "$cur" ]; then
	echo "bench-diff: $cur not found (run make bench-json first); skipping tspbench suite"
	if [ "$regressed" -eq 1 ] && [ "${BENCH_DIFF_STRICT:-0}" = "1" ]; then
		exit 1
	fi
	exit 0
fi

cleanup=""
if [ -z "$base" ]; then
	if ! git cat-file -e "HEAD:BENCH_tspbench.json" 2>/dev/null; then
		echo "bench-diff: no BENCH_tspbench.json committed at HEAD; skipping"
		exit 0
	fi
	base=$(mktemp)
	cleanup=$base
	trap 'rm -f "$cleanup"' EXIT
	git show HEAD:BENCH_tspbench.json >"$base"
fi

# Pull (profile, variant, threads) -> best_miter_per_sec out of the
# pretty-printed JSON. Field order inside each cell follows the Go
# struct (profile, variant, threads, ..., best_miter_per_sec), so a
# line scanner is enough; no jq dependency.
extract() {
	awk '
		/"profile":/  { split($0, q, "\""); p = q[4] }
		/"variant":/  { split($0, q, "\""); v = q[4]; gsub(/ /, "_", v) }
		/"threads":/  { split($0, a, /[:,]/); t = a[2]; gsub(/[ \t]/, "", t) }
		/"best_miter_per_sec":/ {
			split($0, a, /[:,]/); val = a[2]; gsub(/[ \t]/, "", val)
			print p "/" v "/t" t, val
		}
	' "$1"
}

tb=$(mktemp) && tc=$(mktemp)
trap 'rm -f "$tb" "$tc" $cleanup' EXIT
extract "$base" >"$tb"
extract "$cur" >"$tc"

if [ ! -s "$tc" ]; then
	echo "bench-diff: no throughput cells in $cur; skipping"
	exit 0
fi

# Exit 10 from awk flags at least one regression; the table itself
# goes to stdout either way.
echo "bench-diff: tspbench suite (Miter/s, higher is better)"
set +e
awk -v thresh="$thresh" '
	NR == FNR { base[$1] = $2; next }
	{
		if (!($1 in base)) { printf "new      %-42s %24.3f M/s\n", $1, $2; next }
		b = base[$1] + 0; c = $2 + 0
		if (b <= 0) next
		pct = (c / b - 1) * 100
		tag = "ok      "
		if (pct < -thresh) { tag = "REGRESS "; bad++ }
		else if (pct > thresh) tag = "improve "
		printf "%s %-42s %10.3f -> %10.3f M/s  %+7.1f%%\n", tag, $1, b, c, pct
	}
	END { exit (bad > 0 ? 10 : 0) }
' "$tb" "$tc"
rc=$?
set -e

if [ "$rc" -eq 10 ]; then
	regressed=1
elif [ "$rc" -ne 0 ]; then
	echo "bench-diff: tspbench comparison failed (awk exit $rc); skipping"
fi

if [ "$regressed" -eq 1 ]; then
	echo "bench-diff: regression(s) beyond ${thresh}% vs baseline"
	if [ "${BENCH_DIFF_STRICT:-0}" = "1" ]; then
		exit 1
	fi
	echo "bench-diff: soft gate — not failing (set BENCH_DIFF_STRICT=1 to enforce)"
else
	echo "bench-diff: no cell regressed more than ${thresh}%"
fi
exit 0
