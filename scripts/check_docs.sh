#!/bin/sh
# check_docs.sh — the doc-drift gate. docs/PROTOCOL.md is the canonical
# wire and operations reference; this script fails the build when it
# drifts from the code it documents:
#
#   1. The per-binary flag tables in docs/PROTOCOL.md (§8.1 tspcached,
#      §8.2 tspproxy) must each list exactly the flags the live
#      `-help` prints (names compared both ways).
#   2. Every command keyword each protocol adapter dispatches on must
#      appear as a command entry in docs/PROTOCOL.md (native lowercase,
#      RESP uppercase).
#   3. README.md must point at docs/PROTOCOL.md, and any flag rows it
#      still carries must name live flags (of either binary).
set -eu

cd "$(dirname "$0")/.."

doc=docs/PROTOCOL.md
fail=0

# --- 1. flag tables vs live -help ------------------------------------
# Each binary's table lives under its own "### 8.x `<binary>`" heading;
# scrape the flag rows between that heading and the next one.
doc_flags() {
	awk -v bin="$1" '
		/^#/ { in_sec = ($0 ~ "`" bin "`") }
		in_sec && /^\| `-/ { sub(/^\| `/, ""); sub(/`.*/, ""); print }
	' "$doc" | sort -u
}

check_flags() {
	bin=$1
	usage=$(go run ./cmd/"$bin" -h 2>&1 || true)
	live_bin=$(printf '%s\n' "$usage" | awk '/^  -/{print $1}' | sort -u)
	if [ -z "$live_bin" ]; then
		echo "check_docs: could not read flags from '$bin -h'" >&2
		exit 1
	fi
	documented=$(doc_flags "$bin")
	if [ "$live_bin" != "$documented" ]; then
		echo "check_docs: $doc flag table drifted from '$bin -h'" >&2
		echo "--- live flags" >&2
		printf '%s\n' "$live_bin" >&2
		echo "--- documented flags" >&2
		printf '%s\n' "$documented" >&2
		fail=1
	fi
}

check_flags tspcached
live=$live_bin
check_flags tspproxy
live=$(printf '%s\n%s\n' "$live" "$live_bin" | sort -u)

# --- 2. adapter command sets vs the command tables -------------------
# The dispatch switches spell every command as eqFold(cmd, "<name>"),
# which makes the authoritative command list greppable.
native=$(grep -o 'eqFold(cmd, "[a-z]*")' internal/proto/native.go | sed 's/.*"\(.*\)".*/\1/' | sort -u)
for c in $native; do
	if ! grep -q '`'"$c"'[ `]' "$doc"; then
		echo "check_docs: native command \`$c\` missing from $doc" >&2
		fail=1
	fi
done
resp=$(grep -o 'eqFold(cmd, "[a-z]*")' internal/proto/resp.go | sed 's/.*"\(.*\)".*/\1/' | tr 'a-z' 'A-Z' | sort -u)
for c in $resp; do
	if ! grep -q '`'"$c"'[ `]' "$doc"; then
		echo "check_docs: RESP command \`$c\` missing from $doc" >&2
		fail=1
	fi
done

# --- 3. README points at the reference and carries no stale flags ----
if ! grep -q 'docs/PROTOCOL\.md' README.md; then
	echo "check_docs: README.md does not reference docs/PROTOCOL.md" >&2
	fail=1
fi
readme_flags=$(grep '^| `-' README.md | sed 's/^| `\(-[a-z-]*\)`.*/\1/' | sort -u || true)
for f in $readme_flags; do
	if ! printf '%s\n' "$live" | grep -qx -- "$f"; then
		echo "check_docs: README.md documents flag $f that tspcached does not have" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "docs in sync with the code (flags + command tables)"
