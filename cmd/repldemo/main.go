// Command repldemo runs the replication acceptance campaign end to
// end, with real processes and a real SIGKILL: the site-disaster drill
// that the in-process tests cannot stage.
//
// The campaign builds tspcached, starts a primary (with a replication
// listener) and a follower as separate OS processes, and drives the
// paper's Section 5.1 workload against the primary over TCP: T writer
// threads each looping "set c1,t = i; incr a random high key; set
// c2,t = i". Every committed batch group streams to the follower.
// Alongside the writers, -readers optimistic reader connections hammer
// the c1 counters on the lock-free seqlock get path and assert each
// counter only ever moves forward — the recovery-observer argument
// exercised live: the readers take no Atlas mutex, so nothing they do
// can perturb the persistence the invariants depend on, and the
// primary's stats must show the reads really were served lock-free
// (map_opt_gets > 0).
// After the load window it captures the primary's replication stats —
// follower count, groups streamed, and the ack-measured lag
// percentiles — then delivers the disaster: SIGKILL to the primary,
// the one failure class in the paper's taxonomy that no local rescue
// or recovery answers (Section 3; the machine, and its NVM, are gone).
// The follower is promoted over the wire and the recovery observer's
// two invariants are checked on the promoted copy:
//
//	Equation 1:  0 <= Σ c1,t − Σ c2,t <= T
//	Equation 2:  Σ c1,t >= Σ_{k∈H} map[k] >= Σ c2,t
//
// These hold on the follower because replication preserves each
// client's commit order: a writer only issues its next command after
// the previous reply, and the reply is sent only after the committed
// group is appended to the replication log, so the follower's state is
// always a prefix of a history the invariants hold on. As a coda the
// promoted copy takes a simulated power failure ("crash") and the
// invariants are re-checked after local recovery — the promoted
// follower is a full TSP stack, not a cold standby.
//
// Usage (or just `make demo-repl`):
//
//	go run ./cmd/repldemo [-threads 8] [-readers 4] [-high-keys 64] [-shards 4] [-load 2s]
//
// Exits 0 when every check passes, 1 otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/harness"
)

func main() { os.Exit(run()) }

// wire is a minimal synchronous client for the cache text protocol.
type wire struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialWire(addr string) (*wire, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wire{conn: conn, r: bufio.NewReader(conn)}, nil
}

// cmd sends one command and returns the first response line.
func (w *wire) cmd(format string, args ...any) (string, error) {
	if _, err := fmt.Fprintf(w.conn, format+"\r\n", args...); err != nil {
		return "", err
	}
	line, err := w.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// lines sends one command and reads response lines until END.
func (w *wire) lines(format string, args ...any) ([]string, error) {
	if _, err := fmt.Fprintf(w.conn, format+"\r\n", args...); err != nil {
		return nil, err
	}
	var out []string
	for {
		line, err := w.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		out = append(out, line)
		if line == "END" {
			return out, nil
		}
	}
}

func (w *wire) close() { w.conn.Close() }

// stat extracts one STAT field from a stats response.
func stat(lines []string, key string) (string, bool) {
	prefix := "STAT " + key + " "
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			return strings.TrimPrefix(l, prefix), true
		}
	}
	return "", false
}

// getVal reads one key, mapping NOT_FOUND to 0 (a key the killed
// primary never replicated simply does not exist on the follower).
func getVal(w *wire, k uint64) (uint64, error) {
	resp, err := w.cmd("get %d", k)
	if err != nil {
		return 0, err
	}
	if resp == "NOT_FOUND" {
		return 0, nil
	}
	f := strings.Fields(resp)
	if len(f) != 3 || f[0] != "VALUE" {
		return 0, fmt.Errorf("get %d: unexpected response %q", k, resp)
	}
	return strconv.ParseUint(f[2], 10, 64)
}

// invariants is the recovery observer's verdict on the promoted copy.
type invariants struct {
	sumC1, sumC2, sumHigh        uint64
	perThread, eq1, eq2, anyData bool
}

func (v invariants) ok() bool { return v.perThread && v.eq1 && v.eq2 && v.anyData }

func (v invariants) String() string {
	return fmt.Sprintf("Σc1=%d Σc2=%d ΣH=%d perThread=%v eq1=%v eq2=%v",
		v.sumC1, v.sumC2, v.sumHigh, v.perThread, v.eq1, v.eq2)
}

// checkInvariants reads the counters and the high-key range off a
// quiescent server and evaluates Equations 1 and 2 plus the per-thread
// strengthening c2,t <= c1,t <= c2,t + 1.
func checkInvariants(w *wire, threads, highKeys int) (invariants, error) {
	var v invariants
	v.perThread = true
	for t := 0; t < threads; t++ {
		c1, err := getVal(w, harness.KeyC1(t))
		if err != nil {
			return v, err
		}
		c2, err := getVal(w, harness.KeyC2(t))
		if err != nil {
			return v, err
		}
		v.sumC1 += c1
		v.sumC2 += c2
		if !(c2 <= c1 && c1 <= c2+1) {
			v.perThread = false
		}
	}
	lo := harness.HighBase(threads)
	for k := lo; k < lo+uint64(highKeys); k++ {
		h, err := getVal(w, k)
		if err != nil {
			return v, err
		}
		v.sumHigh += h
	}
	diff := int64(v.sumC1) - int64(v.sumC2)
	v.eq1 = diff >= 0 && diff <= int64(threads)
	v.eq2 = v.sumC1 >= v.sumHigh && v.sumHigh >= v.sumC2
	v.anyData = v.sumC1 > 0
	return v, nil
}

// proc is one tspcached child process with its parsed stdout lines.
type proc struct {
	cmd      *exec.Cmd
	addr     string // client listen address
	replAddr string // primary's replication listener ("" for followers)
}

// startServer launches bin with args, scans its stdout for the listen
// banner (and, when expectRepl, the replication banner), and echoes the
// rest of the child's output with a prefix.
func startServer(bin, tag string, expectRepl bool, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd}
	sc := bufio.NewScanner(out)
	deadline := time.After(30 * time.Second)
	got := make(chan error, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Printf("  [%s] %s\n", tag, line)
			if rest, ok := strings.CutPrefix(line, "tspcached listening on "); ok {
				p.addr, _, _ = strings.Cut(rest, " (")
			}
			if rest, ok := strings.CutPrefix(line, "replication: primary streaming on "); ok {
				p.replAddr = rest
			}
			if p.addr != "" && (!expectRepl || p.replAddr != "") {
				got <- nil
				// Keep draining so the child never blocks on stdout.
				for sc.Scan() {
					fmt.Printf("  [%s] %s\n", tag, sc.Text())
				}
				return
			}
		}
		got <- fmt.Errorf("%s exited before announcing its listen address", tag)
	}()
	select {
	case err := <-got:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
		return p, nil
	case <-deadline:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("timed out waiting for %s to start", tag)
	}
}

func run() int {
	threads := flag.Int("threads", 8, "writer threads (T in Equations 1 and 2)")
	readers := flag.Int("readers", 4, "optimistic reader connections polling the c1 counters during load")
	highKeys := flag.Int("high-keys", 64, "high keys (the H range Equation 2 sums)")
	shards := flag.Int("shards", 4, "shards on both primary and follower")
	load := flag.Duration("load", 2*time.Second, "load window before the site disaster")
	flag.Parse()

	fmt.Println("== repldemo: preventive replication acceptance campaign")

	tmp, err := os.MkdirTemp("", "repldemo")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "tspcached")
	fmt.Println("building tspcached...")
	build := exec.Command("go", "build", "-o", bin, "tsp/cmd/tspcached")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n", err)
		return 1
	}

	conns := strconv.Itoa(*threads + *readers + 4)
	nShards := strconv.Itoa(*shards)
	primary, err := startServer(bin, "primary", true,
		"-addr", "127.0.0.1:0", "-repl-listen", "127.0.0.1:0",
		"-shards", nShards, "-conns", conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The primary dies by SIGKILL mid-campaign; this catches early-exit
	// paths only.
	primaryAlive := true
	defer func() {
		if primaryAlive {
			primary.cmd.Process.Kill()
			primary.cmd.Wait()
		}
	}()

	follower, err := startServer(bin, "follower", false,
		"-addr", "127.0.0.1:0", "-replica-of", primary.replAddr,
		"-shards", nShards, "-conns", conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() {
		follower.cmd.Process.Kill()
		follower.cmd.Wait()
	}()

	// The Section 5.1 workload: each writer is one connection looping
	// set-c1 / incr-H / set-c2, synchronously — the next command goes
	// out only after the previous reply, which is what pins the
	// replication log to each writer's program order.
	fmt.Printf("loading: %d writers x (set c1 / incr H / set c2) against the primary\n", *threads)
	var (
		wg         sync.WaitGroup
		totalIters atomic.Uint64
	)
	stop := make(chan struct{})
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w, err := dialWire(primary.addr)
			if err != nil {
				return
			}
			defer w.close()
			rng := uint64(t)<<32 + 0x9e3779b97f4a7c15
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.cmd("set %d %d", harness.KeyC1(t), i); err != nil {
					return // the primary is gone: the disaster landed
				}
				rng += 0x9e3779b97f4a7c15
				x := rng
				x ^= x >> 30
				x *= 0xbf58476d1ce4e5b9
				x ^= x >> 27
				x *= 0x94d049bb133111eb
				x ^= x >> 31
				hk := harness.HighBase(*threads) + x%uint64(*highKeys)
				if _, err := w.cmd("incr %d 1", hk); err != nil {
					return
				}
				if _, err := w.cmd("set %d %d", harness.KeyC2(t), i); err != nil {
					return
				}
				totalIters.Add(1)
			}
		}(t)
	}

	// The lock-free observers: each reader polls the c1 counters on the
	// optimistic get path. A writer only ever advances its c1, so any
	// validated read that regresses is a torn or stale read escaping the
	// seqlock validation.
	var (
		totalReads atomic.Uint64
		readerFail atomic.Value // first violation message, if any
	)
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := dialWire(primary.addr)
			if err != nil {
				return
			}
			defer w.close()
			last := make([]uint64, *threads)
			for t := 0; ; t = (t + 1) % *threads {
				select {
				case <-stop:
					return
				default:
				}
				v, err := getVal(w, harness.KeyC1(t))
				if err != nil {
					return // the primary is gone: the disaster landed
				}
				if v < last[t] {
					readerFail.Store(fmt.Sprintf(
						"reader %d: c1,%d regressed %d -> %d", r, t, last[t], v))
					return
				}
				last[t] = v
				totalReads.Add(1)
			}
		}(r)
	}

	time.Sleep(*load)

	// The acceptance gate on the primary side: a connected follower and
	// nonzero ack-measured lag percentiles, read while the writers are
	// still loading.
	pstats, err := dialWire(primary.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial primary for stats: %v\n", err)
		return 1
	}
	var lagP50, lagP95, lagP99, streamed, optGets string
	statsDeadline := time.Now().Add(15 * time.Second)
	for {
		lines, err := pstats.lines("stats")
		if err != nil {
			fmt.Fprintf(os.Stderr, "primary stats: %v\n", err)
			return 1
		}
		followers, _ := stat(lines, "repl_followers")
		lagP50, _ = stat(lines, "repl_lag_p50_us")
		lagP95, _ = stat(lines, "repl_lag_p95_us")
		lagP99, _ = stat(lines, "repl_lag_p99_us")
		streamed, _ = stat(lines, "repl_groups_streamed")
		optGets, _ = stat(lines, "map_opt_gets")
		if followers == "1" && lagP50 != "" {
			break
		}
		if time.Now().After(statsDeadline) {
			fmt.Fprintf(os.Stderr, "primary never reported a follower with lag samples (followers=%q lag_p50=%q)\n",
				followers, lagP50)
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
	pstats.close()
	fmt.Printf("primary before the kill: repl_groups_streamed=%s lag p50=%sus p95=%sus p99=%sus map_opt_gets=%s\n",
		streamed, lagP50, lagP95, lagP99, optGets)
	if *readers > 0 && (optGets == "" || optGets == "0") {
		fmt.Fprintln(os.Stderr, "FAIL: readers ran but the primary served no optimistic gets")
		return 1
	}

	// The site disaster: SIGKILL, no shutdown path, no final flush. The
	// writers see connection errors and wind down like killed clients.
	fmt.Println("delivering the site disaster: SIGKILL to the primary")
	primary.cmd.Process.Kill()
	primary.cmd.Wait()
	primaryAlive = false
	close(stop)
	wg.Wait()
	fmt.Printf("writers stopped after %d completed iterations; readers validated %d lock-free reads\n",
		totalIters.Load(), totalReads.Load())
	if msg := readerFail.Load(); msg != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %s\n", msg)
		return 1
	}

	fw, err := dialWire(follower.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial follower: %v\n", err)
		return 1
	}
	defer fw.close()
	resp, err := fw.cmd("promote")
	if err != nil || resp != "OK PROMOTED" {
		fmt.Fprintf(os.Stderr, "promote: %q err=%v\n", resp, err)
		return 1
	}
	fmt.Println("follower promoted")

	v, err := checkInvariants(fw, *threads, *highKeys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invariant read: %v\n", err)
		return 1
	}
	fmt.Printf("invariants on the promoted copy:  %s\n", v)
	if !v.ok() {
		fmt.Fprintln(os.Stderr, "FAIL: invariants violated on the promoted copy (or the copy is empty)")
		return 1
	}

	// Coda: the promoted copy is a full TSP stack — crash it locally and
	// re-verify after recovery.
	resp, err = fw.cmd("crash")
	if err != nil || !strings.HasPrefix(resp, "OK RECOVERED") {
		fmt.Fprintf(os.Stderr, "crash on promoted copy: %q err=%v\n", resp, err)
		return 1
	}
	v2, err := checkInvariants(fw, *threads, *highKeys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invariant read after crash: %v\n", err)
		return 1
	}
	fmt.Printf("invariants after crash+recovery:  %s\n", v2)
	if !v2.ok() || v2.sumC1 != v.sumC1 || v2.sumC2 != v.sumC2 || v2.sumHigh != v.sumHigh {
		fmt.Fprintln(os.Stderr, "FAIL: promoted copy lost data across local crash recovery")
		return 1
	}

	fmt.Println("PASS: site disaster survived by prevention; promoted copy upholds Equations 1 and 2")
	return 0
}
