// Command faultinject runs the Section 5.2 fault-injection experiment:
// it repeatedly crashes the running map workload at uniformly random
// instants (the in-process analogue of the paper's SIGKILL), recovers,
// and has the recovery observer verify the integrity invariants
// (Equations 1 and 2) plus the structural invariants of the map.
//
// The default campaign covers the paper's claim — hundreds of crashes,
// all recovering consistently — for the fortified variants under a full
// TSP rescue, and for Atlas non-TSP mode under a crash with NO rescue.
// With -hazard it additionally demonstrates the failure mode the TSP
// framework predicts: Atlas TSP mode crashed WITHOUT its rescue.
//
// The durability-tier campaign (see durability.go) crashes a full cache
// server under mixed durable/relaxed/wait-barrier traffic and holds each
// tier to its crash contract: durable and barrier-covered writes always
// survive, relaxed losses stay above the recovered epoch frontier.
// -durability-only runs just that campaign (the pre-merge gate's shape);
// -durability-cycles sets its crash-cycle count.
//
// The exactly-once campaign (see exactlyonce.go) runs a replicated
// primary/follower pair under a sessioned retry storm — every mutation
// resent as a lost-ack duplicate — with a mid-storm power failure and an
// end-of-cycle follower promotion, holding the seq=<n> dedup window to
// the detectable-operation contract: no duplicate ever applies twice,
// on the recovered primary or the promoted follower. -exactly-once runs
// just that campaign; -exactly-once-cycles sets its cycle count.
//
// The cluster campaign (see cluster.go) runs a three-node cluster
// behind a routing proxy under the same duplicate-send storm, crashes
// one owning node mid-storm, then migrates every one of its slots away
// while traffic continues — holding the cluster to zero acked-write
// loss across the migration flips, exactly-once replay on whichever
// node owns each key afterwards, MOVED correctness on the old owner,
// and Eq 1 & 2 on every node. -cluster runs just that campaign;
// -cluster-cycles sets its cycle count.
//
// Every campaign also tallies into the telemetry registry's campaign_*
// vocabulary; the final "STAT campaign_* <n>" lines are the same schema
// a server's `stats` command speaks, so campaign results aggregate and
// diff with the shared Snapshot arithmetic.
//
// Usage:
//
//	faultinject [-n 100] [-threads 8] [-seed 1] [-hazard]
//	            [-durability-only] [-durability-cycles 10]
//	            [-exactly-once] [-exactly-once-cycles 4]
//	            [-cluster] [-cluster-cycles 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"tsp/internal/harness"
	"tsp/internal/telemetry"
)

// campTel accumulates every campaign's outcome in the telemetry
// registry's campaign_* vocabulary (see printCampaignStats).
var campTel = &telemetry.CampaignStats{}

// printCampaignStats renders the accumulated campaign counters in the
// servers' STAT vocabulary — one schema for campaigns and servers.
func printCampaignStats() {
	fmt.Println()
	campTel.Walk(func(name string, v uint64) {
		fmt.Printf("STAT %s %d\n", name, v)
	})
}

func main() {
	n := flag.Int("n", 100, "crashes to inject per configuration")
	threads := flag.Int("threads", 8, "worker threads")
	seed := flag.Int64("seed", 1, "base seed")
	hazard := flag.Bool("hazard", false, "also run TSP-mode-without-rescue to demonstrate the hazard")
	durOnly := flag.Bool("durability-only", false, "run only the durability-tier cache-server campaign")
	durCycles := flag.Int("durability-cycles", 10, "crash cycles in the durability-tier campaign")
	eoOnly := flag.Bool("exactly-once", false, "run only the exactly-once retry campaign (replicated pair, crash + promote)")
	eoCycles := flag.Int("exactly-once-cycles", 4, "crash+promote cycles in the exactly-once campaign")
	clOnly := flag.Bool("cluster", false, "run only the cluster campaign (3 nodes + proxy, crash + slot rebalance)")
	clCycles := flag.Int("cluster-cycles", 3, "crash+rebalance cycles in the cluster campaign")
	flag.Parse()

	if *durOnly {
		ok := runDurability(*durCycles, *threads, *seed)
		printCampaignStats()
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *eoOnly {
		ok := runExactlyOnce(*eoCycles, *threads, *seed)
		printCampaignStats()
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *clOnly {
		ok := runCluster(*clCycles, *threads, *seed)
		printCampaignStats()
		if !ok {
			os.Exit(1)
		}
		return
	}

	type scenario struct {
		name    string
		variant harness.Variant
		rescue  float64
		expect  string // "all" = every run must be consistent
	}
	scenarios := []scenario{
		{"non-blocking + TSP rescue", harness.NonBlocking, 1, "all"},
		{"atlas log-only (TSP mode) + TSP rescue", harness.MutexAtlasTSP, 1, "all"},
		{"atlas log+flush (non-TSP) + TSP rescue", harness.MutexAtlasNonTSP, 1, "all"},
		{"atlas log+flush (non-TSP) + NO rescue", harness.MutexAtlasNonTSP, 0, "all"},
	}
	if *hazard {
		// A half-completed rescue (or equivalently, cache eviction having
		// persisted an arbitrary subset of stores) is the dangerous case
		// for TSP mode: the unflushed undo log is partially gone while
		// some uncommitted data stores are durable. A total loss
		// (rescue=0) would merely revert to the last fully durable state,
		// which is consistent; it is the *mixed* outcome that corrupts.
		scenarios = append(scenarios,
			scenario{"atlas log-only (TSP mode) + HALF rescue  [hazard demo]", harness.MutexAtlasTSP, 0.5, "some-may-fail"})
	}

	exitCode := 0
	for _, sc := range scenarios {
		cfg := harness.Config{
			Variant: sc.variant,
			Threads: *threads,
			Seed:    *seed,
		}
		camp, err := harness.Campaign(cfg, harness.CrashOptions{RescueFraction: sc.rescue}, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", sc.name, err)
			os.Exit(1)
		}
		// The hazard demo is excluded from the shared tally: its failures
		// are the expected demonstration, not campaign inconsistency.
		if sc.expect == "all" {
			campTel.Record(camp.Runs, camp.Consistent)
			campTel.Crashes.Add(uint64(camp.Runs))
		}
		status := "OK"
		if sc.expect == "all" && !camp.OK() {
			status = "FAILED"
			exitCode = 1
		}
		if sc.expect != "all" {
			status = fmt.Sprintf("expected: recovery not guaranteed (observed %d/%d consistent)",
				camp.Consistent, camp.Runs)
		}
		fmt.Printf("%-55s %3d/%3d consistent  %s\n", sc.name, camp.Consistent, camp.Runs, status)
		for i, f := range camp.Failures {
			if sc.expect == "all" && i < 3 {
				fmt.Printf("    failure: %s (recovery err: %v)\n", f, f.RecoveryErr)
			}
		}
	}
	// The multi-engine campaign crashes map and skip-list writers
	// sharing one heap (see multiengine.go).
	if !runMultiEngine(*n, *threads, *seed) {
		exitCode = 1
	}
	// The durability-tier campaign crashes the cache server under
	// mixed-tier wire traffic (see durability.go).
	if !runDurability(*durCycles, *threads, *seed) {
		exitCode = 1
	}
	// The exactly-once campaign holds the session dedup window to its
	// retry contract across crash and promotion (see exactlyonce.go).
	if !runExactlyOnce(*eoCycles, *threads, *seed) {
		exitCode = 1
	}
	// The cluster campaign holds the routing tier to zero acked-write
	// loss across crash and slot rebalance (see cluster.go).
	if !runCluster(*clCycles, *threads, *seed) {
		exitCode = 1
	}
	printCampaignStats()
	os.Exit(exitCode)
}
