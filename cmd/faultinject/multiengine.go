package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tsp/internal/nvm"
	"tsp/internal/stack"
)

// The multi-engine campaign crashes the FULL storage stack — the
// fortified hash map and the lock-free skip list sharing one heap under
// the multi-engine root — while writers are hot on both engines at
// once, then reattaches through stack.Reattach and verifies both
// structures. It exercises what the per-structure campaigns cannot: the
// crash window where a skip-list CAS (durable the instant it lands)
// interleaves with an Atlas critical section (durable at OCS commit),
// and recovery must deliver the map's rollback semantics and the list's
// as-is semantics from the same rescued device image.

// meResult is one multi-engine run's outcome.
type meResult struct {
	consistent bool
	err        error
}

// meSlots is the per-writer key-slot count; small enough that every
// slot sees many overwrites inside a run's crash window.
const meSlots = 16

// slotState tracks one key's write progress: the last value the writer
// issued (handed to Put) and the last it saw acknowledged (Put
// returned). After recovery the durable value must lie in
// [acked, issued] — below acked the durability point was violated,
// above issued the value was invented.
type slotState struct {
	key           uint64
	issued, acked uint64
}

// checkSlot verifies one slot's recovered value against its bound.
// Absent is legal only while nothing was ever acknowledged.
func checkSlot(st *slotState, got uint64, found bool) error {
	if !found {
		if st.acked > 0 {
			return fmt.Errorf("key %#x: acked value %d lost", st.key, st.acked)
		}
		return nil
	}
	if got < st.acked || got > st.issued {
		return fmt.Errorf("key %#x: recovered %d outside [acked %d, issued %d]",
			st.key, got, st.acked, st.issued)
	}
	return nil
}

// runMultiEngineOnce builds a stack, hammers both engines from threads
// writer pairs, crashes at a random instant with a full TSP rescue, and
// verifies recovery.
func runMultiEngineOnce(threads int, seed int64) meResult {
	stk, err := stack.New(
		stack.WithDeviceWords(1<<20),
		stack.WithMaxThreads(threads+1),
	)
	if err != nil {
		return meResult{err: err}
	}
	dev := stk.Dev
	dev.StartEvictor()

	// One map writer and one list writer per thread, each owning a
	// disjoint slot set. List keys and map keys live in distinct halves
	// of the keyspace so the check is unambiguous.
	mapSlots := make([][]slotState, threads)
	listSlots := make([][]slotState, threads)
	for w := 0; w < threads; w++ {
		mapSlots[w] = make([]slotState, meSlots)
		listSlots[w] = make([]slotState, meSlots)
		for i := range mapSlots[w] {
			mapSlots[w][i].key = 1<<61 | uint64(w)<<32 | uint64(i)
			listSlots[w][i].key = 1<<62 | uint64(w)<<32 | uint64(i)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		th, err := stk.RT.NewThread()
		if err != nil {
			dev.StopEvictor()
			return meResult{err: err}
		}
		wg.Add(2)
		go func(w int) { // map writer
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := &mapSlots[w][rng.Intn(meSlots)]
				st.issued++
				if err := stk.Map.Put(th, st.key, st.issued); err != nil {
					return
				}
				// Ack only if the machine was still alive when the op
				// returned: a store racing the crash instant is dropped by
				// the device (the simulated thread was already killed), and
				// this goroutine acking it afterwards would be the Go
				// runtime outliving the simulation. Observing Crashed()
				// false orders the store before the rescue flush.
				if dev.Crashed() {
					return
				}
				st.acked = st.issued
			}
		}(w)
		go func(w int) { // list writer
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*2 + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := &listSlots[w][rng.Intn(meSlots)]
				st.issued++
				if _, err := stk.List.Put(st.key, st.issued); err != nil {
					return
				}
				if dev.Crashed() { // same ack rule as the map writer
					return
				}
				st.acked = st.issued
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(seed))
	time.Sleep(2*time.Millisecond + time.Duration(rng.Int63n(int64(18*time.Millisecond))))
	dev.StopEvictor()
	dev.Crash(nvm.CrashOptions{RescueFraction: 1, Seed: seed})
	close(stop)
	wg.Wait()

	dev.Restart()
	ns, err := stack.Reattach(dev, stack.WithMaxThreads(threads+1))
	if err != nil {
		return meResult{err: fmt.Errorf("reattach: %w", err)}
	}
	if _, err := ns.Map.Verify(); err != nil {
		return meResult{err: fmt.Errorf("map verify: %w", err)}
	}
	if _, err := ns.List.Verify(); err != nil {
		return meResult{err: fmt.Errorf("list verify: %w", err)}
	}
	th, err := ns.RT.NewThread()
	if err != nil {
		return meResult{err: err}
	}
	for w := 0; w < threads; w++ {
		for i := range mapSlots[w] {
			st := &mapSlots[w][i]
			got, found, err := ns.Map.Get(th, st.key)
			if err != nil {
				return meResult{err: err}
			}
			if err := checkSlot(st, got, found); err != nil {
				return meResult{err: fmt.Errorf("map %v", err)}
			}
		}
		for i := range listSlots[w] {
			st := &listSlots[w][i]
			got, found := ns.List.Get(st.key)
			if err := checkSlot(st, got, found); err != nil {
				return meResult{err: fmt.Errorf("list %v", err)}
			}
		}
	}
	return meResult{consistent: true}
}

// runMultiEngine runs the campaign n times and reports it in the
// scenario table's format. Returns false if any run was inconsistent.
func runMultiEngine(n, threads int, seed int64) bool {
	consistent := 0
	var firstErr error
	for i := 0; i < n; i++ {
		res := runMultiEngineOnce(threads, seed+int64(i)*7919)
		if res.consistent {
			consistent++
		} else if firstErr == nil {
			firstErr = res.err
		}
	}
	campTel.Record(n, consistent)
	campTel.Crashes.Add(uint64(n))
	status := "OK"
	if consistent != n {
		status = "FAILED"
	}
	fmt.Printf("%-55s %3d/%3d consistent  %s\n", "multi-engine root (map+list) + TSP rescue", consistent, n, status)
	if firstErr != nil {
		fmt.Printf("    failure: %v\n", firstErr)
	}
	return consistent == n
}
