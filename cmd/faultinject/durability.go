package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"tsp/internal/cacheserver"
)

// The durability-tier campaign crashes the full cache server — not just
// a storage stack — under mixed-tier traffic arriving over real TCP:
// durable writers whose every ack is a commitment, relaxed writers whose
// acks carry `@<epoch>` receipts redeemable against the crash reply's
// persistent frontier, and barrier writers who close each relaxed burst
// with `wait`. Each cycle crashes every shard mid-conversation, parses
// the `OK RECOVERED EPOCH <p>` receipt, and holds each tier to its
// contract:
//
//   - durable:   every acked write survives, exactly (last ack == read).
//   - wait:      every barrier-covered relaxed write survives.
//   - relaxed:   the recovered value is one of the acked values; every
//     write whose stamp was at or below the frontier p survives; only
//     writes stamped above p — at most one epoch interval's worth, the
//     paper's timeliness bound — may be shed.
//
// Values per key are strictly increasing, so "survives" is checkable as
// an interval bound on the single recovered value, the same discipline
// the multi-engine campaign uses.

// durSlots is the per-writer key-slot count.
const durSlots = 8

// durEpochInterval is the campaign server's epoch period: short, so
// every cycle spans many epoch closes.
const durEpochInterval = 2 * time.Millisecond

// durSlot tracks one key's acked history. For durable and wait-covered
// keys only the last covered value matters; relaxed keys keep every
// (value, stamp) ack so the frontier bound can be evaluated after the
// crash reveals p.
type durSlot struct {
	key     uint64
	acks    []durAck // relaxed: every ack this cycle, stamps nondecreasing
	covered uint64   // durable/wait: last value guaranteed to survive
	wrote   bool     // any covered write ever issued (absence illegal after)
	prev    uint64   // relaxed: value recovered last cycle (now durable)
}

type durAck struct {
	val   uint64
	epoch uint64
}

// durClient is one writer's connection with line-oriented helpers.
type durClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func durDial(addr string) (*durClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &durClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// cmd writes one request line and returns the single reply line.
func (c *durClient) cmd(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
		return "", err
	}
	rep, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(rep, "\r\n"), nil
}

// parseStamp extracts the epoch from a "STORED @<e>" ack.
func parseStamp(rep string) (uint64, error) {
	i := strings.LastIndexByte(rep, '@')
	if i < 0 {
		return 0, fmt.Errorf("ack %q carries no epoch stamp", rep)
	}
	return strconv.ParseUint(rep[i+1:], 10, 64)
}

// runDurabilityOnce drives one crash cycle's writers against the shared
// server, crashes, and verifies every tier's contract. The slot state
// persists across cycles (values keep climbing); acks reset because a
// crash resolves them.
func runDurabilityOnce(addr string, cycle int, durable, relaxed, barrier [][]durSlot, next *uint64) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(durable)+len(relaxed)+len(barrier))

	// Durable writers: request/response sets, every ack a commitment.
	for w := range durable {
		wg.Add(1)
		go func(slots []durSlot) {
			defer wg.Done()
			c, err := durDial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.conn.Close()
			for op := 0; op < 6*durSlots; op++ {
				st := &slots[op%durSlots]
				v := *next + uint64(cycle*1000+op)
				rep, err := c.cmd(fmt.Sprintf("set %d %d", st.key, v))
				if err != nil {
					errs <- err
					return
				}
				if !strings.HasPrefix(rep, "STORED") {
					errs <- fmt.Errorf("durable set: %q", rep)
					return
				}
				st.covered, st.wrote = v, true
			}
		}(durable[w])
	}

	// Relaxed writers: every ack records its epoch stamp for the
	// post-crash frontier check.
	for w := range relaxed {
		wg.Add(1)
		go func(slots []durSlot) {
			defer wg.Done()
			c, err := durDial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.conn.Close()
			for op := 0; op < 24*durSlots; op++ {
				st := &slots[op%durSlots]
				v := *next + uint64(cycle*1000+op)
				rep, err := c.cmd(fmt.Sprintf("set %d %d relaxed", st.key, v))
				if err != nil {
					errs <- err
					return
				}
				e, err := parseStamp(rep)
				if err != nil {
					errs <- err
					return
				}
				st.acks = append(st.acks, durAck{val: v, epoch: e})
			}
		}(relaxed[w])
	}

	// Barrier writers: relaxed bursts closed by one wait each. Once the
	// wait returns, the whole burst is crash-proof.
	for w := range barrier {
		wg.Add(1)
		go func(slots []durSlot) {
			defer wg.Done()
			c, err := durDial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.conn.Close()
			for burst := 0; burst < 4; burst++ {
				staged := make([]uint64, durSlots)
				for i := range slots {
					v := *next + uint64(cycle*1000+burst*durSlots+i)
					rep, err := c.cmd(fmt.Sprintf("set %d %d relaxed", slots[i].key, v))
					if err != nil {
						errs <- err
						return
					}
					if _, err := parseStamp(rep); err != nil {
						errs <- err
						return
					}
					staged[i] = v
				}
				if _, err := c.cmd("wait"); err != nil {
					errs <- err
					return
				}
				for i := range slots {
					slots[i].covered, slots[i].wrote = staged[i], true
				}
			}
		}(barrier[w])
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	*next += uint64(1000000)

	// Crash every shard and redeem the receipt.
	ctl, err := durDial(addr)
	if err != nil {
		return err
	}
	defer ctl.conn.Close()
	rep, err := ctl.cmd("crash")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(rep, "OK RECOVERED EPOCH ") {
		return fmt.Errorf("crash reply: %q", rep)
	}
	frontier, err := strconv.ParseUint(strings.TrimPrefix(rep, "OK RECOVERED EPOCH "), 10, 64)
	if err != nil {
		return fmt.Errorf("crash reply %q: %w", rep, err)
	}

	read := func(key uint64) (uint64, bool, error) {
		rep, err := ctl.cmd(fmt.Sprintf("get %d", key))
		if err != nil {
			return 0, false, err
		}
		if rep == "NOT_FOUND" {
			return 0, false, nil
		}
		f := strings.Fields(rep)
		if len(f) != 3 || f[0] != "VALUE" {
			return 0, false, fmt.Errorf("get %d: %q", key, rep)
		}
		v, err := strconv.ParseUint(f[2], 10, 64)
		return v, true, err
	}

	// Covered tiers (durable acks, wait-covered bursts): exact survival.
	for _, group := range [][][]durSlot{durable, barrier} {
		for _, slots := range group {
			for i := range slots {
				st := &slots[i]
				got, found, err := read(st.key)
				if err != nil {
					return err
				}
				if st.wrote && !found {
					return fmt.Errorf("key %#x: covered value %d lost entirely", st.key, st.covered)
				}
				if found && got != st.covered {
					return fmt.Errorf("key %#x: covered value %d, recovered %d", st.key, st.covered, got)
				}
			}
		}
	}

	// Relaxed tier: the frontier bound. mustSurvive is the largest value
	// stamped at or below p; the recovered value must be an acked value
	// at or above it (losses are only ever a suffix stamped above p).
	for _, slots := range relaxed {
		for i := range slots {
			st := &slots[i]
			var mustSurvive, lastAcked uint64
			ackedSet := map[uint64]uint64{} // val -> stamp
			for _, a := range st.acks {
				ackedSet[a.val] = a.epoch
				if a.epoch <= frontier && a.val > mustSurvive {
					mustSurvive = a.val
				}
				if a.val > lastAcked {
					lastAcked = a.val
				}
			}
			got, found, err := read(st.key)
			if err != nil {
				return err
			}
			if !found {
				if mustSurvive > 0 {
					return fmt.Errorf("key %#x: value %d stamped <= frontier %d lost", st.key, mustSurvive, frontier)
				}
				if st.prev > 0 {
					return fmt.Errorf("key %#x: previously recovered (durable) value %d vanished", st.key, st.prev)
				}
				st.acks = st.acks[:0]
				continue
			}
			stamp, acked := ackedSet[got]
			switch {
			case acked:
				// This cycle's ack: must cover the frontier and not exceed
				// what was acknowledged.
				if got < mustSurvive {
					return fmt.Errorf("key %#x: recovered %d (stamp %d) below frontier-covered value %d (frontier %d)",
						st.key, got, stamp, mustSurvive, frontier)
				}
				if got > lastAcked {
					return fmt.Errorf("key %#x: recovered %d above last ack %d", st.key, got, lastAcked)
				}
			case got == st.prev && mustSurvive == 0:
				// The whole cycle's relaxed suffix was stamped above the
				// frontier and legally shed; the prior survivor resurfaced.
			default:
				return fmt.Errorf("key %#x: recovered %d was never acked (frontier %d, must-survive %d, prev %d)",
					st.key, got, frontier, mustSurvive, st.prev)
			}
			st.prev = got
			st.acks = st.acks[:0]
		}
	}
	return nil
}

// runDurability runs the mixed-tier campaign: one shared server, n crash
// cycles, writer state persisting across cycles so later cycles verify
// earlier cycles' survivors too. Reported in the scenario table's
// format; returns false if any cycle broke a tier's contract.
func runDurability(n, threads int, seed int64) bool {
	srv, err := cacheserver.New(
		cacheserver.WithShards(2),
		cacheserver.WithMaxConns(threads+4),
		cacheserver.WithEpochInterval(durEpochInterval),
	)
	if err != nil {
		fmt.Printf("%-55s FAILED to start: %v\n", "durability tiers (cacheserver) + crash", err)
		return false
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	perTier := threads / 3
	if perTier < 1 {
		perTier = 1
	}
	mkSlots := func(tier uint64, writers int) [][]durSlot {
		out := make([][]durSlot, writers)
		for w := range out {
			out[w] = make([]durSlot, durSlots)
			for i := range out[w] {
				out[w][i].key = tier<<60 | uint64(seed&0xff)<<40 | uint64(w)<<32 | uint64(i+1)
			}
		}
		return out
	}
	durable := mkSlots(1, perTier)
	relaxed := mkSlots(2, perTier)
	barrier := mkSlots(3, perTier)

	next := uint64(seed%1000) + 1
	consistent := 0
	var firstErr error
	for cycle := 0; cycle < n; cycle++ {
		if err := runDurabilityOnce(addr, cycle, durable, relaxed, barrier, &next); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		consistent++
	}

	// Final integrity pass: the recovered stacks must still satisfy the
	// map and skip-list invariants after the whole crash storm.
	verifyErr := srv.VerifyAll()

	campTel.Record(n, consistent)
	campTel.Crashes.Add(uint64(n))
	status := "OK"
	if consistent != n || verifyErr != nil {
		status = "FAILED"
	}
	fmt.Printf("%-55s %3d/%3d consistent  %s\n", "durability tiers (cacheserver) + crash", consistent, n, status)
	if firstErr != nil {
		fmt.Printf("    failure: %v\n", firstErr)
	}
	if verifyErr != nil {
		fmt.Printf("    verify: %v\n", verifyErr)
	}
	return consistent == n && verifyErr == nil
}
