package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"tsp/internal/cacheserver"
)

// The exactly-once campaign drives a replicated primary/follower pair
// through a retry storm: every writer binds a session, tags every
// mutation with a seq, and SENDS EVERY REQUEST TWICE — the resend is
// the lost-ack retry every unreliable network eventually forces. Mid-
// storm the primary is power-failed and recovered; after the storm the
// follower is promoted and the writers replay their last request
// against it. The contract under test (see internal/cacheserver's
// session.go):
//
//   - durable:  a resend NEVER re-applies — it replays the recorded ack
//     verbatim, across the crash and on the promoted follower alike.
//   - relaxed:  a resend either replays the ack or, when the crash shed
//     the value and its record together, re-applies against the equally
//     rewound state — so the observed value never exceeds the first
//     ack. A resend above the first ack is a double application, the
//     bug this campaign exists to catch.
//   - always:   after the final barrier, a read returns exactly the
//     last acknowledged value; nothing applied twice anywhere.
//
// Increments are the probe because they are not idempotent: one extra
// application is arithmetically visible forever.

// eoDelta is every increment's delta; acked totals are multiples of it.
const eoDelta = 3

// eoOps is the number of (request, resend) pairs each writer issues per
// cycle.
const eoOps = 12

// eoWriter is one session's state through a cycle.
type eoWriter struct {
	c    *durClient
	sess uint64
	key  uint64
	cmd  string // "incr" or "zincr"
	get  string // matching read command
	tier string // "" (durable) or " relaxed"
	seq  uint64
	last uint64 // value of the most recent (re)send's ack
}

// eoVal parses the leading integer of an incr/zincr ack, tolerating a
// trailing `@<epoch>` stamp on relaxed acks.
func eoVal(rep string) (uint64, error) {
	f := strings.Fields(rep)
	if len(f) == 0 {
		return 0, fmt.Errorf("empty ack")
	}
	v, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ack %q: %w", rep, err)
	}
	return v, nil
}

// sendTwice issues one seq-tagged increment and immediately retries it
// (the simulated lost ack), checking the dedup contract for the
// writer's tier. The concurrent crash makes the relaxed bound one-sided.
func (w *eoWriter) sendTwice() error {
	w.seq++
	line := fmt.Sprintf("%s %d %d seq=%d%s", w.cmd, w.key, eoDelta, w.seq, w.tier)
	rep1, err := w.c.cmd(line)
	if err != nil {
		return err
	}
	v1, err := eoVal(rep1)
	if err != nil {
		return fmt.Errorf("session %d seq %d: %w", w.sess, w.seq, err)
	}
	rep2, err := w.c.cmd(line)
	if err != nil {
		return err
	}
	v2, err := eoVal(rep2)
	if err != nil {
		return fmt.Errorf("session %d seq %d retry: %w", w.sess, w.seq, err)
	}
	if w.tier == "" && v2 != v1 {
		return fmt.Errorf("session %d seq %d: durable retry answered %d, first ack %d", w.sess, w.seq, v2, v1)
	}
	if v2 > v1 {
		return fmt.Errorf("session %d seq %d: retry answered %d above first ack %d (double application)", w.sess, w.seq, v2, v1)
	}
	w.last = v2
	return nil
}

// replayLast resends the writer's most recent request on conn c,
// returning the answered value.
func (w *eoWriter) replayLast(c *durClient) (uint64, error) {
	line := fmt.Sprintf("%s %d %d seq=%d%s", w.cmd, w.key, eoDelta, w.seq, w.tier)
	rep, err := c.cmd(line)
	if err != nil {
		return 0, err
	}
	return eoVal(rep)
}

// runExactlyOnceCycle boots a fresh primary/follower pair, runs the
// retry storm with one full-server crash at the halfway mark, then
// promotes the follower and holds both servers to the contract.
func runExactlyOnceCycle(cycle, writers int, seed int64) error {
	primary, err := cacheserver.New(
		cacheserver.WithShards(2),
		cacheserver.WithMaxConns(writers+4),
		cacheserver.WithReplListen("127.0.0.1:0"),
		cacheserver.WithEpochInterval(durEpochInterval),
	)
	if err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	go primary.Serve()
	defer primary.Close()
	follower, err := cacheserver.New(
		cacheserver.WithShards(2),
		cacheserver.WithMaxConns(writers+4),
		cacheserver.WithReplicaOf(primary.ReplAddr().String()),
		cacheserver.WithEpochInterval(durEpochInterval),
	)
	if err != nil {
		return fmt.Errorf("follower: %w", err)
	}
	go follower.Serve()
	defer follower.Close()
	addr := primary.Addr().String()

	// One writer per session: a third each durable incr, relaxed incr,
	// and durable zincr (the ordered keyspace rides the same window).
	ws := make([]*eoWriter, writers)
	for i := range ws {
		w := &eoWriter{
			sess: uint64(i + 1),
			key:  uint64(seed&0xff)<<40 | uint64(cycle)<<32 | uint64(i+1)<<8 | 1,
			cmd:  "incr", get: "get",
		}
		switch i % 3 {
		case 1:
			w.tier = " relaxed"
		case 2:
			w.cmd, w.get = "zincr", "zget"
		}
		c, err := durDial(addr)
		if err != nil {
			return err
		}
		defer c.conn.Close()
		if rep, err := c.cmd(fmt.Sprintf("session %d", w.sess)); err != nil || !strings.HasPrefix(rep, "OK SESSION") {
			return fmt.Errorf("session handshake: %q, %v", rep, err)
		}
		w.c = c
		ws[i] = w
	}

	// The storm: each writer signals the halfway mark; the main flow
	// power-fails every shard while the second half is still arriving.
	var half, all sync.WaitGroup
	errs := make(chan error, writers)
	half.Add(writers)
	all.Add(writers)
	for _, w := range ws {
		go func(w *eoWriter) {
			defer all.Done()
			for op := 0; op < eoOps; op++ {
				if op == eoOps/2 {
					half.Done()
				}
				if err := w.sendTwice(); err != nil {
					errs <- err
					// The halfway signal must fire even on early exit.
					if op < eoOps/2 {
						half.Done()
					}
					return
				}
			}
		}(w)
	}
	half.Wait()
	ctl, err := durDial(addr)
	if err != nil {
		return err
	}
	defer ctl.conn.Close()
	rep, err := ctl.cmd("crash")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(rep, "OK RECOVERED EPOCH ") {
		return fmt.Errorf("crash reply: %q", rep)
	}
	all.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Settle: one replay per writer (the post-crash retry), a barrier to
	// flush any re-applied relaxed state, then the read must agree with
	// the replay's answer exactly.
	for _, w := range ws {
		v, err := w.replayLast(w.c)
		if err != nil {
			return err
		}
		if w.tier == "" && v != w.last {
			return fmt.Errorf("session %d: durable replay answered %d, last ack %d", w.sess, v, w.last)
		}
		if v > w.last {
			return fmt.Errorf("session %d: replay answered %d above last ack %d (double application)", w.sess, v, w.last)
		}
		w.last = v
		if _, err := w.c.cmd("wait"); err != nil {
			return err
		}
		rep, err := w.c.cmd(fmt.Sprintf("%s %d", w.get, w.key))
		if err != nil {
			return err
		}
		want := fmt.Sprintf("VALUE %d %d", w.key, w.last)
		if rep != want {
			return fmt.Errorf("session %d: read %q, want %q", w.sess, rep, want)
		}
	}

	// Failover: wait for the follower to converge, promote it, and
	// replay every writer's last request there. The records rode the
	// replication stream, so the promoted follower must suppress the
	// duplicates exactly as the primary would have.
	fc, err := durDial(follower.Addr().String())
	if err != nil {
		return err
	}
	defer fc.conn.Close()
	deadline := time.Now().Add(15 * time.Second)
	for _, w := range ws {
		want := fmt.Sprintf("VALUE %d %d", w.key, w.last)
		for {
			rep, err := fc.cmd(fmt.Sprintf("%s %d", w.get, w.key))
			if err != nil {
				return err
			}
			if rep == want {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("session %d: follower stuck at %q, want %q", w.sess, rep, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if rep, err := fc.cmd("promote"); err != nil || rep != "OK PROMOTED" {
		return fmt.Errorf("promote: %q, %v", rep, err)
	}
	for _, w := range ws {
		if rep, err := fc.cmd(fmt.Sprintf("session %d", w.sess)); err != nil || !strings.HasPrefix(rep, "OK SESSION") {
			return fmt.Errorf("follower session handshake: %q, %v", rep, err)
		}
		v, err := w.replayLast(fc)
		if err != nil {
			return err
		}
		if v != w.last {
			return fmt.Errorf("session %d: promoted follower answered replay with %d, want %d", w.sess, v, w.last)
		}
		// Fresh traffic continues on the new primary with the next seq.
		w.seq++
		line := fmt.Sprintf("%s %d %d seq=%d", w.cmd, w.key, eoDelta, w.seq)
		rep, err := fc.cmd(line)
		if err != nil {
			return err
		}
		v, err = eoVal(rep)
		if err != nil {
			return err
		}
		if v != w.last+eoDelta {
			return fmt.Errorf("session %d: fresh seq on follower answered %d, want %d", w.sess, v, w.last+eoDelta)
		}
	}
	return primary.VerifyAll()
}

// runExactlyOnce runs the campaign: n cycles, each against a fresh
// replicated pair. Reported in the scenario table's format; returns
// false if any cycle broke the exactly-once contract.
func runExactlyOnce(n, threads int, seed int64) bool {
	writers := threads
	if writers < 3 {
		writers = 3
	}
	consistent := 0
	var firstErr error
	for cycle := 0; cycle < n; cycle++ {
		if err := runExactlyOnceCycle(cycle, writers, seed); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		consistent++
	}
	campTel.Record(n, consistent)
	campTel.Crashes.Add(uint64(n))
	status := "OK"
	if consistent != n {
		status = "FAILED"
	}
	fmt.Printf("%-55s %3d/%3d consistent  %s\n", "exactly-once retries (repl pair) + crash + promote", consistent, n, status)
	if firstErr != nil {
		fmt.Printf("    failure: %v\n", firstErr)
	}
	return consistent == n
}
