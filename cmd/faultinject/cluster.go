package main

import (
	"fmt"
	"strings"
	"sync"

	"tsp/internal/cacheserver"
	"tsp/internal/cluster"
	"tsp/internal/telemetry"
)

// The cluster campaign holds the routing tier to the paper's invariants
// cluster-wide: three cluster nodes (two owning half the slot space
// each, one empty) behind one routing proxy, stormed by sessioned
// writers who send every seq-tagged increment twice (the lost-ack
// retry), through the proxy only — the writers never learn the
// topology. Mid-storm one owning node is power-failed and recovered
// (the in-process SIGKILL, as in the durability campaign); then, while
// the storm is still running, every slot it owns is migrated away
// through the proxy — half to the other owner, half to the empty node,
// the rebalance — so live traffic crosses the dual-write window and the
// ring-epoch flip. The contract:
//
//   - zero acked-write loss: a durable writer's every ack must be
//     exactly the previous ack plus the delta, through the crash AND
//     through the migration flips — durable state survives both, so any
//     gap is a lost acked write.
//   - exactly-once cluster-wide: no retry may ever answer above its
//     first ack (a double application), and after the storm each
//     session's replayed last request must answer its recorded ack on
//     whichever node now owns the key — the dedup window migrates with
//     the slot.
//   - redirect correctness: after the rebalance the old owner must
//     answer MOVED (naming the new owner) for every migrated slot, and
//     reads through the proxy must still see exactly the last acks.
//   - Eq 1 & 2: every node's full recovery-integrity verification must
//     pass once the storm settles.

// clOps is the number of (request, resend) pairs each writer issues per
// cycle — enough that the storm brackets the crash and the migrations.
const clOps = 16

// clMoveSlots is how many of the crashed node's slots move to EACH of
// the two surviving nodes (the rebalance); it owns 2*clMoveSlots slots
// before, zero after.
const clMoveSlots = 16

// runClusterCycle boots a fresh three-node cluster plus proxy, storms
// it with duplicate-send sessioned increments, crashes node A at the
// halfway mark, rebalances all of A's slots away under load, then
// settles and verifies the cluster-wide contract.
func runClusterCycle(cycle, writers int, seed int64) error {
	node := func(slots string) (*cacheserver.Server, error) {
		return cacheserver.New(
			cacheserver.WithShards(2),
			cacheserver.WithMaxConns(writers+8),
			cacheserver.WithEpochInterval(durEpochInterval),
			cacheserver.WithClusterSlots(slots),
		)
	}
	a, err := node("0-31")
	if err != nil {
		return fmt.Errorf("node a: %w", err)
	}
	go a.Serve()
	defer a.Close()
	b, err := node("32-63")
	if err != nil {
		return fmt.Errorf("node b: %w", err)
	}
	go b.Serve()
	defer b.Close()
	c, err := node("none")
	if err != nil {
		return fmt.Errorf("node c: %w", err)
	}
	go c.Serve()
	defer c.Close()
	aAddr, bAddr, cAddr := a.Addr().String(), b.Addr().String(), c.Addr().String()

	proxy, err := cluster.New(cluster.Config{
		Addr:  "127.0.0.1:0",
		Nodes: []string{aAddr, bAddr, cAddr},
		Tel:   &telemetry.RouteStats{},
	})
	if err != nil {
		return fmt.Errorf("proxy: %w", err)
	}
	defer proxy.Close()

	// One eoWriter per session, all connected to the PROXY: a third each
	// durable incr, relaxed incr, and durable zincr. Keys hash across
	// the whole slot space, so some live on A (crashed + migrated) and
	// some on B.
	ws := make([]*eoWriter, writers)
	for i := range ws {
		w := &eoWriter{
			sess: uint64(i + 1),
			key:  uint64(seed&0xff)<<40 | uint64(cycle)<<32 | uint64(i+1)<<8 | 3,
			cmd:  "incr", get: "get",
		}
		switch i % 3 {
		case 1:
			w.tier = " relaxed"
		case 2:
			w.cmd, w.get = "zincr", "zget"
		}
		conn, err := durDial(proxy.Addr())
		if err != nil {
			return err
		}
		defer conn.conn.Close()
		if rep, err := conn.cmd(fmt.Sprintf("session %d", w.sess)); err != nil || !strings.HasPrefix(rep, "OK SESSION") {
			return fmt.Errorf("proxy session handshake: %q, %v", rep, err)
		}
		w.c = conn
		ws[i] = w
	}

	// The storm. Durable-tier writers additionally hold the strict
	// zero-acked-write-loss bound: each ack advances by exactly eoDelta,
	// across the crash and across the migration flips (durable state
	// survives both, so any gap is a lost acked write).
	var half, all sync.WaitGroup
	errs := make(chan error, writers)
	half.Add(writers)
	all.Add(writers)
	for _, w := range ws {
		go func(w *eoWriter) {
			defer all.Done()
			for op := 0; op < clOps; op++ {
				if op == clOps/2 {
					half.Done()
				}
				prev, started := w.last, w.seq > 0
				if err := w.sendTwice(); err != nil {
					errs <- err
					if op < clOps/2 {
						half.Done()
					}
					return
				}
				if w.tier == "" && started && w.last != prev+eoDelta {
					errs <- fmt.Errorf("session %d seq %d: durable ack %d, want %d (acked write lost)",
						w.sess, w.seq, w.last, prev+eoDelta)
					if op < clOps/2 {
						half.Done()
					}
					return
				}
			}
		}(w)
	}
	half.Wait()

	// Power-fail node A mid-storm and let its recovery serve the rest.
	ctl, err := durDial(aAddr)
	if err != nil {
		return err
	}
	defer ctl.conn.Close()
	if rep, err := ctl.cmd("crash"); err != nil || !strings.HasPrefix(rep, "OK RECOVERED EPOCH ") {
		return fmt.Errorf("crash reply: %q, %v", rep, err)
	}

	// Rebalance the recovered node out of the cluster while the storm is
	// still running: its low slots to the empty node, the rest to the
	// other owner, every migration driven through the proxy (which flips
	// its own ring on each acknowledgement).
	mig, err := durDial(proxy.Addr())
	if err != nil {
		return err
	}
	defer mig.conn.Close()
	for slot := 0; slot < 2*clMoveSlots; slot++ {
		target := cAddr
		if slot >= clMoveSlots {
			target = bAddr
		}
		rep, err := mig.cmd(fmt.Sprintf("migrate %d %s", slot, target))
		if err != nil {
			return fmt.Errorf("migrate %d: %w", slot, err)
		}
		if !strings.HasPrefix(rep, "OK MIGRATED") {
			return fmt.Errorf("migrate %d: %q", slot, rep)
		}
		campTel.Migrations.Inc()
	}

	all.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	// Settle: replay each session's last request through the proxy — the
	// dedup record migrated with its slot, so whichever node owns the
	// key now must suppress the duplicate — then barrier and read back
	// exactly the last ack.
	for _, w := range ws {
		v, err := w.replayLast(w.c)
		if err != nil {
			return err
		}
		if w.tier == "" && v != w.last {
			return fmt.Errorf("session %d: durable replay answered %d, last ack %d", w.sess, v, w.last)
		}
		if v > w.last {
			return fmt.Errorf("session %d: replay answered %d above last ack %d (double application)", w.sess, v, w.last)
		}
		w.last = v
		if _, err := w.c.cmd("wait"); err != nil {
			return err
		}
		rep, err := w.c.cmd(fmt.Sprintf("%s %d", w.get, w.key))
		if err != nil {
			return err
		}
		want := fmt.Sprintf("VALUE %d %d", w.key, w.last)
		if rep != want {
			return fmt.Errorf("session %d: read %q, want %q", w.sess, rep, want)
		}
	}

	// The rebalanced-away node must redirect every migrated slot to its
	// new owner.
	for _, w := range ws {
		slot := cluster.SlotOf(w.key)
		if slot >= 2*clMoveSlots {
			continue
		}
		target := cAddr
		if slot >= clMoveSlots {
			target = bAddr
		}
		rep, err := ctl.cmd(fmt.Sprintf("get %d", w.key))
		if err != nil {
			return err
		}
		if rep != fmt.Sprintf("MOVED %d %s", slot, target) {
			return fmt.Errorf("old owner answered %q for slot %d, want MOVED to %s", rep, slot, target)
		}
	}

	// Eq 1 & 2 on every node.
	for name, srv := range map[string]*cacheserver.Server{"a": a, "b": b, "c": c} {
		if err := srv.VerifyAll(); err != nil {
			return fmt.Errorf("node %s: %w", name, err)
		}
	}
	return nil
}

// runCluster runs the campaign: n cycles, each against a fresh
// three-node cluster and proxy. Reported in the scenario table's
// format; returns false if any cycle broke the cluster-wide contract.
func runCluster(n, threads int, seed int64) bool {
	writers := threads
	if writers < 6 {
		writers = 6
	}
	consistent := 0
	var firstErr error
	for cycle := 0; cycle < n; cycle++ {
		if err := runClusterCycle(cycle, writers, seed); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		consistent++
	}
	campTel.Record(n, consistent)
	campTel.Crashes.Add(uint64(n))
	status := "OK"
	if consistent != n {
		status = "FAILED"
	}
	fmt.Printf("%-55s %3d/%3d consistent  %s\n", "cluster storm + node crash + slot rebalance", consistent, n, status)
	if firstErr != nil {
		fmt.Printf("    failure: %v\n", firstErr)
	}
	return consistent == n
}
