package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"tsp/internal/cacheserver"
	"tsp/internal/proto"
	"tsp/internal/stats"
)

// The pipelined wire benchmark: an in-process cache server driven over
// real TCP by a client that batches N requests per write using the
// proto package's client-side encoding, at several pipeline depths.
// Depth 1 is the request/response baseline; deeper cells show how much
// throughput the codec's batch decoding and single-enqueue group
// execution recover once clients stop paying one round trip (and the
// server one read, one enqueue, one write) per command.

// pipelineWorkloads are the benchmarked request shapes. mset8 writes 8
// pairs per request, so its per-request rate understates ops/s by 8x —
// it is the batched-mutation shape the shard pipeline amortizes best.
var pipelineWorkloads = []string{"set", "get", "mset8"}

// pipelineKeys bounds the keyspace so gets hit preloaded keys.
const pipelineKeys = 8192

// runPipelineMode measures every (workload, depth) cell and appends
// them to the report under profile "pipeline".
func runPipelineMode(depths []int, duration time.Duration, seed int64, report *benchReport) {
	srv, err := cacheserver.New(cacheserver.WithShards(4), cacheserver.WithMaxConns(8))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	fmt.Println("Pipelined wire codec (native protocol over TCP, one in-process server,")
	fmt.Println("one client connection; depth = requests per write; rate in requests/s)")
	fmt.Println()
	tbl := stats.Table{Header: []string{"workload", "depth", "req/s", "p50 us/req", "p99 us/req"}}
	for _, wl := range pipelineWorkloads {
		for _, depth := range depths {
			cell, err := runPipelineCell(addr, wl, depth, duration, seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tbl.AddRow(wl, fmt.Sprintf("%d", depth),
				fmt.Sprintf("%.0f", cell.BestMIterPerSec*1e6),
				fmt.Sprintf("%.1f", cell.P50Ns/1e3),
				fmt.Sprintf("%.1f", cell.P99Ns/1e3))
			report.Cells = append(report.Cells, cell)
		}
	}
	fmt.Print(tbl.String())
}

// runPipelineCell drives one (workload, depth) cell over a fresh
// connection. Latency percentiles are per request: each burst's wall
// time divided by its depth, so depth-1 p50 is true request RTT and
// deeper cells show the amortized cost per command.
func runPipelineCell(addr, workload string, depth int, duration time.Duration, seed int64) (benchCell, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return benchCell{}, err
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	na := proto.Native{}
	rng := rand.New(rand.NewSource(seed))

	readLine := func() error {
		_, err := r.ReadSlice('\n')
		return err
	}

	// Preload the keyspace so gets hit and sets overwrite — steady-state
	// shape, no map growth mid-measurement.
	buf := make([]byte, 0, 1<<16)
	req := proto.Request{Cmd: proto.CmdSet}
	for k := uint64(0); k < pipelineKeys; k++ {
		req.KV = append(req.KV[:0], k, k)
		buf = na.AppendRequest(buf, &req)
		if len(buf) >= 32<<10 || k == pipelineKeys-1 {
			if _, err := conn.Write(buf); err != nil {
				return benchCell{}, err
			}
			buf = buf[:0]
		}
	}
	for k := 0; k < pipelineKeys; k++ {
		if err := readLine(); err != nil {
			return benchCell{}, fmt.Errorf("preload reply %d: %w", k, err)
		}
	}

	// Build one burst of `depth` requests, write it, read `depth`
	// single-line replies. Every benchmarked workload answers exactly
	// one line per request.
	appendReq := func(dst []byte) []byte {
		switch workload {
		case "set":
			req.Cmd = proto.CmdSet
			req.KV = append(req.KV[:0], rng.Uint64()%pipelineKeys, rng.Uint64()%1000)
		case "get":
			req.Cmd = proto.CmdGet
			req.KV = append(req.KV[:0], rng.Uint64()%pipelineKeys)
		default: // mset8
			req.Cmd = proto.CmdMSet
			req.KV = req.KV[:0]
			for i := 0; i < 8; i++ {
				req.KV = append(req.KV, rng.Uint64()%pipelineKeys, rng.Uint64()%1000)
			}
		}
		return na.AppendRequest(dst, &req)
	}

	var bursts []time.Duration
	requests := 0
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		buf = buf[:0]
		for i := 0; i < depth; i++ {
			buf = appendReq(buf)
		}
		t0 := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return benchCell{}, err
		}
		for i := 0; i < depth; i++ {
			if err := readLine(); err != nil {
				return benchCell{}, fmt.Errorf("%s depth %d reply: %w", workload, depth, err)
			}
		}
		bursts = append(bursts, time.Since(t0))
		requests += depth
	}

	var total time.Duration
	for _, d := range bursts {
		total += d
	}
	perReq := func(q float64) float64 {
		if len(bursts) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), bursts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(depth)
	}
	cell := benchCell{
		Profile:    "pipeline",
		Variant:    fmt.Sprintf("%s_depth%d", workload, depth),
		Threads:    1,
		Runs:       1,
		Iterations: uint64(requests),
		P50Ns:      perReq(0.50),
		P99Ns:      perReq(0.99),
	}
	if total > 0 {
		cell.BestMIterPerSec = float64(requests) / total.Seconds() / 1e6
		cell.MeanMIterPerSec = cell.BestMIterPerSec
	}
	return cell, nil
}
