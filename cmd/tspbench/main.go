// Command tspbench regenerates the paper's Table 1: throughput of the
// four map variants (mutex-based with no Atlas, Atlas log-only = TSP
// mode, Atlas log+flush = non-TSP mode, and the lock-free skip list) on
// the desktop and server platform profiles, followed by the derived
// overhead and speedup percentages the paper quotes.
//
// With -json the same results are additionally written as a
// machine-readable report to BENCH_tspbench.json (see benchReport), so
// perf trajectories can be tracked across commits without scraping the
// human-readable tables.
//
// With -pipeline the command instead benchmarks the wire codec: an
// in-process cache server driven over TCP by a client pipelining N
// requests per write (N from -depths), reporting request throughput
// and per-request latency per (workload, depth) cell. Pipeline cells
// are merged into the JSON report under profile "pipeline" without
// disturbing the Table-1 cells already recorded there.
//
// With -ordered it benchmarks the ordered keyspace: zadd/zrange/mixed
// traffic against the persistent skip list, merged into the report
// under profile "ordered" the same way.
//
// With -epoch it benchmarks the per-command durability tiers: the same
// set workload acked durable (committed before the ack), relaxed (acked
// from the volatile overlay, persisted at epoch close), and fire
// (acked before any state is consulted), plus a relaxed burst closed by
// one `wait` barrier. Cells merge under profile "epoch".
//
// With -session it benchmarks the exactly-once machinery: sessioned
// seq-tagged increments against the plain baseline, on the durable and
// relaxed tiers, plus a pure duplicate-replay cell. Cells merge under
// profile "session".
//
// With -cluster it benchmarks the routing tier: mixed pipelined
// set/get traffic against one directly-addressed node versus the same
// load through one tspproxy over 1, 2, and 4 cluster nodes, reporting
// aggregate req/s per cell and the depth-1 p50 cost of the proxy hop.
// Cells merge under profile "cluster".
//
// Usage:
//
//	tspbench [-duration 2s] [-seed 1] [-profiles desktop,server] [-runs 3]
//	         [-latency] [-pipeline] [-depths 1,8,64] [-ordered] [-epoch]
//	         [-session] [-cluster] [-json] [-out BENCH_tspbench.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsp/internal/harness"
	"tsp/internal/platform"
	"tsp/internal/stats"
)

// benchCell is one (profile, variant) measurement in the JSON report.
// Throughput fields are in millions of worker iterations per second;
// latency fields are nanoseconds. Fields that don't apply to the mode
// are omitted.
type benchCell struct {
	Profile string `json:"profile"`
	Variant string `json:"variant"`
	Threads int    `json:"threads"`
	Runs    int    `json:"runs,omitempty"`

	BestMIterPerSec   float64 `json:"best_miter_per_sec,omitempty"`
	MeanMIterPerSec   float64 `json:"mean_miter_per_sec,omitempty"`
	StddevMIterPerSec float64 `json:"stddev_miter_per_sec,omitempty"`

	Iterations uint64  `json:"iterations,omitempty"`
	P50Ns      float64 `json:"p50_ns,omitempty"`
	P90Ns      float64 `json:"p90_ns,omitempty"`
	P99Ns      float64 `json:"p99_ns,omitempty"`
	MaxNs      float64 `json:"max_ns,omitempty"`
	MeanNs     float64 `json:"mean_ns,omitempty"`
}

// benchDerived carries the paper's headline percentages for one profile.
type benchDerived struct {
	Profile             string  `json:"profile"`
	LogOnlyOverheadPct  float64 `json:"log_only_overhead_pct"`
	LogFlushOverheadPct float64 `json:"log_flush_overhead_pct"`
	TSPSpeedupPct       float64 `json:"tsp_speedup_pct"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Mode        string         `json:"mode"` // "throughput" or "latency"
	DurationSec float64        `json:"duration_sec"`
	Seed        int64          `json:"seed"`
	Timestamp   string         `json:"timestamp"`
	Cells       []benchCell    `json:"cells"`
	Derived     []benchDerived `json:"derived,omitempty"`
}

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement window per cell")
	seed := flag.Int64("seed", 1, "workload seed")
	profiles := flag.String("profiles", "desktop,server", "comma-separated platform profiles")
	runs := flag.Int("runs", 1, "repetitions per cell (best run reported, all summarized)")
	latency := flag.Bool("latency", false, "measure per-iteration latency distributions instead of throughput")
	pipeline := flag.Bool("pipeline", false, "benchmark the pipelined wire codec against an in-process server instead of Table 1")
	ordered := flag.Bool("ordered", false, "benchmark the ordered keyspace (zadd/zrange) against an in-process server instead of Table 1")
	epoch := flag.Bool("epoch", false, "benchmark the per-command durability tiers against an in-process server instead of Table 1")
	session := flag.Bool("session", false, "benchmark the exactly-once session dedup window against an in-process server instead of Table 1")
	clusterMode := flag.Bool("cluster", false, "benchmark the routing tier (tspproxy over 1/2/4 nodes vs one direct node) instead of Table 1")
	depthsFlag := flag.String("depths", "1,8,64", "comma-separated pipeline depths used with -pipeline")
	jsonOut := flag.Bool("json", false, "also write a machine-readable report (see -out)")
	outPath := flag.String("out", "BENCH_tspbench.json", "report path used with -json")
	flag.Parse()

	var profs []platform.Profile
	for _, name := range strings.Split(*profiles, ",") {
		p, err := platform.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		profs = append(profs, p)
	}

	report := benchReport{
		Mode:        "throughput",
		DurationSec: duration.Seconds(),
		Seed:        *seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	if *latency {
		report.Mode = "latency"
	}

	switch {
	case *pipeline:
		report.Mode = "pipeline"
		var depths []int
		for _, d := range strings.Split(*depthsFlag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(d), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -depths entry %q\n", d)
				os.Exit(2)
			}
			depths = append(depths, n)
		}
		runPipelineMode(depths, *duration, *seed, &report)
		// Pipeline cells extend the committed report rather than
		// replacing it: keep every non-pipeline cell already recorded so
		// the Table-1 baseline survives a bench-pipeline refresh.
		if *jsonOut {
			mergeExistingCells(*outPath, &report)
		}
	case *ordered:
		report.Mode = "ordered"
		runOrderedMode(*duration, *seed, &report)
		// Same merge discipline as -pipeline: only the "ordered" profile
		// cells are refreshed.
		if *jsonOut {
			mergeExistingCells(*outPath, &report)
		}
	case *epoch:
		report.Mode = "epoch"
		runEpochMode(*duration, *seed, &report)
		// Same merge discipline: only the "epoch" profile cells refresh.
		if *jsonOut {
			mergeExistingCells(*outPath, &report)
		}
	case *session:
		report.Mode = "session"
		runSessionMode(*duration, *seed, &report)
		// Same merge discipline: only the "session" profile cells refresh.
		if *jsonOut {
			mergeExistingCells(*outPath, &report)
		}
	case *clusterMode:
		report.Mode = "cluster"
		runClusterMode(*duration, *seed, &report)
		// Same merge discipline: only the "cluster" profile cells refresh.
		if *jsonOut {
			mergeExistingCells(*outPath, &report)
		}
	case *latency:
		runLatencyMode(profs, *duration, *seed, &report)
	case *runs <= 1:
		runSingle(profs, *duration, *seed, &report)
	default:
		runMulti(profs, *duration, *seed, *runs, &report)
	}

	if *jsonOut {
		if err := writeReport(*outPath, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d cells)\n", *outPath, len(report.Cells))
	}
}

// mergeExistingCells folds the cells of an existing report at path
// into report, dropping the stale copies of any profile report
// regenerated (matched by profile name) and preserving the rest —
// derived rows included.
func mergeExistingCells(path string, report *benchReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // nothing to merge
	}
	var old benchReport
	if err := json.Unmarshal(data, &old); err != nil {
		return // unreadable old report: overwrite
	}
	fresh := map[string]bool{}
	for _, c := range report.Cells {
		fresh[c.Profile] = true
	}
	kept := make([]benchCell, 0, len(old.Cells)+len(report.Cells))
	for _, c := range old.Cells {
		if !fresh[c.Profile] {
			kept = append(kept, c)
		}
	}
	report.Cells = append(kept, report.Cells...)
	if len(report.Derived) == 0 {
		report.Derived = old.Derived
	}
	if old.Mode != "" && old.Mode != report.Mode {
		report.Mode = old.Mode + "+" + report.Mode
	}
}

func runLatencyMode(profs []platform.Profile, duration time.Duration, seed int64, report *benchReport) {
	fmt.Println("Per-iteration latency distributions (extension experiment: the tail cost")
	fmt.Println("of prevention — synchronous flushing — versus TSP procrastination)")
	fmt.Println()
	for _, prof := range profs {
		fmt.Printf("== %s ==\n", prof)
		for _, v := range harness.AllVariants() {
			cfg := harness.Config{Variant: v, Duration: duration, Seed: seed}.FromProfile(prof)
			res, err := harness.RunLatency(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %s\n", res)
			report.Cells = append(report.Cells, benchCell{
				Profile:    prof.Name,
				Variant:    v.String(),
				Threads:    res.Threads,
				Iterations: res.Iterations,
				P50Ns:      float64(res.P50),
				P90Ns:      float64(res.P90),
				P99Ns:      float64(res.P99),
				MaxNs:      float64(res.Max),
				MeanNs:     float64(res.Mean),
			})
		}
		fmt.Println()
	}
}

func runSingle(profs []platform.Profile, duration time.Duration, seed int64, report *benchReport) {
	fmt.Println("Reproducing Table 1 (throughput in millions of worker iterations per second;")
	fmt.Println("each iteration = 3 atomic map operations, as in Section 5.1)")
	fmt.Println()
	rows, err := harness.Table1(profs, duration, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatTable1(rows))
	for _, row := range rows {
		for _, v := range harness.AllVariants() {
			res := row.Results[v]
			report.Cells = append(report.Cells, benchCell{
				Profile:         row.Profile.Name,
				Variant:         v.String(),
				Threads:         res.Threads,
				Runs:            1,
				BestMIterPerSec: res.IterPerSec() / 1e6,
				MeanMIterPerSec: res.IterPerSec() / 1e6,
				Iterations:      res.Iterations,
			})
		}
		lo, lf, sp := row.Overheads()
		report.Derived = append(report.Derived, benchDerived{
			Profile:             row.Profile.Name,
			LogOnlyOverheadPct:  lo * 100,
			LogFlushOverheadPct: lf * 100,
			TSPSpeedupPct:       sp * 100,
		})
	}
}

func runMulti(profs []platform.Profile, duration time.Duration, seed int64, runs int, report *benchReport) {
	fmt.Println("Reproducing Table 1 (throughput in millions of worker iterations per second;")
	fmt.Println("each iteration = 3 atomic map operations, as in Section 5.1)")
	fmt.Println()
	// Multi-run mode: report best-of plus dispersion per cell.
	for _, prof := range profs {
		fmt.Printf("== %s ==\n", prof)
		tbl := stats.Table{Header: []string{"variant", "best M/s", "mean M/s", "std M/s", "runs"}}
		best := map[harness.Variant]float64{}
		for _, v := range harness.AllVariants() {
			var sample stats.Sample
			threads := 0
			for r := 0; r < runs; r++ {
				cfg := harness.Config{Variant: v, Duration: duration, Seed: seed + int64(r)}.FromProfile(prof)
				res, err := harness.RunThroughput(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				threads = res.Threads
				m := res.IterPerSec() / 1e6
				sample.Add(m)
				if m > best[v] {
					best[v] = m
				}
			}
			tbl.AddRow(v.String(),
				fmt.Sprintf("%.3f", best[v]),
				fmt.Sprintf("%.3f", sample.Mean()),
				fmt.Sprintf("%.3f", sample.Stddev()),
				fmt.Sprintf("%d", sample.N()))
			report.Cells = append(report.Cells, benchCell{
				Profile:           prof.Name,
				Variant:           v.String(),
				Threads:           threads,
				Runs:              sample.N(),
				BestMIterPerSec:   best[v],
				MeanMIterPerSec:   sample.Mean(),
				StddevMIterPerSec: sample.Stddev(),
			})
		}
		fmt.Print(tbl.String())
		base, logOnly, logFlush := best[harness.MutexNoAtlas], best[harness.MutexAtlasTSP], best[harness.MutexAtlasNonTSP]
		if base > 0 && logFlush > 0 {
			lo, lf, sp := (1-logOnly/base)*100, (1-logFlush/base)*100, (logOnly/logFlush-1)*100
			fmt.Printf("log-only overhead %.0f%%, log+flush overhead %.0f%%, TSP speedup over non-TSP %.0f%%\n\n", lo, lf, sp)
			report.Derived = append(report.Derived, benchDerived{
				Profile:             prof.Name,
				LogOnlyOverheadPct:  lo,
				LogFlushOverheadPct: lf,
				TSPSpeedupPct:       sp,
			})
		}
	}
}

func writeReport(path string, report benchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
