// Command tspbench regenerates the paper's Table 1: throughput of the
// four map variants (mutex-based with no Atlas, Atlas log-only = TSP
// mode, Atlas log+flush = non-TSP mode, and the lock-free skip list) on
// the desktop and server platform profiles, followed by the derived
// overhead and speedup percentages the paper quotes.
//
// Usage:
//
//	tspbench [-duration 2s] [-seed 1] [-profiles desktop,server] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsp/internal/harness"
	"tsp/internal/platform"
	"tsp/internal/stats"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement window per cell")
	seed := flag.Int64("seed", 1, "workload seed")
	profiles := flag.String("profiles", "desktop,server", "comma-separated platform profiles")
	runs := flag.Int("runs", 1, "repetitions per cell (best run reported, all summarized)")
	latency := flag.Bool("latency", false, "measure per-iteration latency distributions instead of throughput")
	flag.Parse()

	var profs []platform.Profile
	for _, name := range strings.Split(*profiles, ",") {
		p, err := platform.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		profs = append(profs, p)
	}

	if *latency {
		fmt.Println("Per-iteration latency distributions (extension experiment: the tail cost")
		fmt.Println("of prevention — synchronous flushing — versus TSP procrastination)")
		fmt.Println()
		for _, prof := range profs {
			fmt.Printf("== %s ==\n", prof)
			for _, v := range harness.AllVariants() {
				cfg := harness.Config{Variant: v, Duration: *duration, Seed: *seed}.FromProfile(prof)
				res, err := harness.RunLatency(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("  %s\n", res)
			}
			fmt.Println()
		}
		return
	}

	fmt.Println("Reproducing Table 1 (throughput in millions of worker iterations per second;")
	fmt.Println("each iteration = 3 atomic map operations, as in Section 5.1)")
	fmt.Println()

	if *runs <= 1 {
		rows, err := harness.Table1(profs, *duration, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatTable1(rows))
		return
	}

	// Multi-run mode: report best-of plus dispersion per cell.
	for _, prof := range profs {
		fmt.Printf("== %s ==\n", prof)
		tbl := stats.Table{Header: []string{"variant", "best M/s", "mean M/s", "std M/s", "runs"}}
		best := map[harness.Variant]float64{}
		for _, v := range harness.AllVariants() {
			var sample stats.Sample
			for r := 0; r < *runs; r++ {
				cfg := harness.Config{Variant: v, Duration: *duration, Seed: *seed + int64(r)}.FromProfile(prof)
				res, err := harness.RunThroughput(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				m := res.IterPerSec() / 1e6
				sample.Add(m)
				if m > best[v] {
					best[v] = m
				}
			}
			tbl.AddRow(v.String(),
				fmt.Sprintf("%.3f", best[v]),
				fmt.Sprintf("%.3f", sample.Mean()),
				fmt.Sprintf("%.3f", sample.Stddev()),
				fmt.Sprintf("%d", sample.N()))
		}
		fmt.Print(tbl.String())
		base, logOnly, logFlush := best[harness.MutexNoAtlas], best[harness.MutexAtlasTSP], best[harness.MutexAtlasNonTSP]
		if base > 0 && logFlush > 0 {
			fmt.Printf("log-only overhead %.0f%%, log+flush overhead %.0f%%, TSP speedup over non-TSP %.0f%%\n\n",
				(1-logOnly/base)*100, (1-logFlush/base)*100, (logOnly/logFlush-1)*100)
		}
	}
}
