package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"tsp/internal/cacheserver"
	"tsp/internal/proto"
	"tsp/internal/stats"
)

// The session benchmark prices the exactly-once machinery: the same
// depth-32 pipelined increment bursts as the epoch mode, with the
// measured dimension being the seq=<n> dedup window. Increments are
// used (not sets) because they are the op the window exists for — a
// retried set is idempotent, a retried incr is not.
//
//	incr_durable     — no session, no seq: the baseline an undetectable
//	                   operation pays today.
//	incr_seq_durable — fresh seq per request: the committed path plus one
//	                   dedup-record store inside the same Atlas section.
//	                   The gap to the baseline is the exactly-once tax.
//	incr_seq_relaxed — fresh seq on the relaxed tier: the record rides
//	                   the overlay and persists at epoch close, so the
//	                   ack path stays commit-free.
//	incr_seq_dup     — every burst resends one seq 32 times: 1 fresh
//	                   application + 31 replayed acks, the pure
//	                   dup-suppression rate (no map mutation at all).

// sessionDepth is the pipelined burst length every cell uses.
const sessionDepth = 32

// runSessionMode measures every dedup-window cell and appends them to
// the report under profile "session".
func runSessionMode(duration time.Duration, seed int64, report *benchReport) {
	srv, err := cacheserver.New(
		cacheserver.WithShards(4),
		cacheserver.WithMaxConns(8),
		cacheserver.WithEpochInterval(5*time.Millisecond),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	fmt.Printf("Exactly-once sessions (native protocol over TCP, one in-process server, one\n")
	fmt.Printf("client connection, depth-%d incr bursts; rate in requests/s)\n", sessionDepth)
	fmt.Println()
	tbl := stats.Table{Header: []string{"variant", "req/s", "p50 us/req", "p99 us/req"}}
	cells := []struct {
		variant string
		seq     bool
		dup     bool
		tier    proto.Durability
	}{
		{"incr_durable", false, false, proto.DurDurable},
		{"incr_seq_durable", true, false, proto.DurDurable},
		{"incr_seq_relaxed", true, false, proto.DurRelaxed},
		{"incr_seq_dup", true, true, proto.DurDurable},
	}
	for i, tc := range cells {
		cell, err := runSessionCell(addr, tc.variant, uint64(i+1), tc.seq, tc.dup, tc.tier, duration, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.AddRow(cell.Variant,
			fmt.Sprintf("%.0f", cell.BestMIterPerSec*1e6),
			fmt.Sprintf("%.1f", cell.P50Ns/1e3),
			fmt.Sprintf("%.1f", cell.P99Ns/1e3))
		report.Cells = append(report.Cells, cell)
	}
	fmt.Print(tbl.String())
}

// runSessionCell drives one cell over a fresh connection: bursts of
// sessionDepth increments to one private key. Sessioned cells bind the
// session first; the dup cell advances seq once per burst and resends
// it sessionDepth times, so all but the first reply are replayed acks.
func runSessionCell(addr, variant string, key uint64, withSeq, dup bool, tier proto.Durability, duration time.Duration, seed int64) (benchCell, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return benchCell{}, err
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	na := proto.Native{}

	readLine := func() (string, error) {
		line, err := r.ReadString('\n')
		return strings.TrimRight(line, "\r\n"), err
	}

	buf := make([]byte, 0, 1<<16)
	if withSeq {
		sreq := proto.Request{Cmd: proto.CmdSession, KV: []uint64{key}}
		buf = na.AppendRequest(buf, &sreq)
		if _, err := conn.Write(buf); err != nil {
			return benchCell{}, err
		}
		rep, err := readLine()
		if err != nil || !strings.HasPrefix(rep, "OK SESSION") {
			return benchCell{}, fmt.Errorf("%s handshake: %q, %v", variant, rep, err)
		}
	}

	var seq uint64
	var bursts []time.Duration
	requests := 0
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		buf = buf[:0]
		if dup {
			seq++ // one fresh seq, resent sessionDepth times
		}
		for i := 0; i < sessionDepth; i++ {
			if withSeq && !dup {
				seq++
			}
			req := proto.Request{Cmd: proto.CmdIncr, Dur: tier,
				KV: []uint64{key + 100, 1}, Seq: seq, HasSeq: withSeq}
			buf = na.AppendRequest(buf, &req)
		}
		t0 := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return benchCell{}, err
		}
		for i := 0; i < sessionDepth; i++ {
			rep, err := readLine()
			if err != nil {
				return benchCell{}, fmt.Errorf("%s reply %d: %w", variant, i, err)
			}
			if strings.HasPrefix(rep, "CLIENT_ERROR") || strings.HasPrefix(rep, "SERVER_ERROR") {
				return benchCell{}, fmt.Errorf("%s reply %d: %s", variant, i, rep)
			}
		}
		bursts = append(bursts, time.Since(t0))
		requests += sessionDepth
	}

	var total time.Duration
	for _, d := range bursts {
		total += d
	}
	perReq := func(q float64) float64 {
		if len(bursts) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), bursts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(sessionDepth)
	}
	cell := benchCell{
		Profile:    "session",
		Variant:    variant,
		Threads:    1,
		Runs:       1,
		Iterations: uint64(requests),
		P50Ns:      perReq(0.50),
		P99Ns:      perReq(0.99),
	}
	if total > 0 {
		cell.BestMIterPerSec = float64(requests) / total.Seconds() / 1e6
		cell.MeanMIterPerSec = cell.BestMIterPerSec
	}
	return cell, nil
}
