package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"tsp/internal/cacheserver"
	"tsp/internal/proto"
	"tsp/internal/stats"
)

// The durability-tier benchmark: the same in-process server and native
// wire client as the pipeline mode, but the measured dimension is the
// per-command durability level. Every cell pipelines epochDepth sets
// per write — at depth 1 the TCP round trip (~10us on loopback) buries
// the ack-path cost and every tier measures the same; pipelining
// amortizes the wire so the server-side difference is what's left.
// Only the trailing tier token differs between cells:
//
//	set_durable — today's behavior: committed through the Atlas critical
//	              section before the ack. The baseline the relaxed tier
//	              must not tax.
//	set_relaxed — acked from the volatile overlay, persisted when the
//	              epoch closes. The paper's timeliness argument at the
//	              wire: the client observes commit-free ack latency while
//	              the loss bound stays one epoch interval.
//	set_fire    — acked before any state is consulted: the wire + parse
//	              floor, bounding how much of relaxed's win is left.
//
// A fourth cell, set_relaxed_wait, closes each relaxed burst with one
// `wait` barrier — the group-commit shape: durable semantics for the
// group at one epoch close per burst.

// epochTiers are the benchmarked (variant, tier-token) cells.
var epochTiers = []struct {
	variant string
	tier    proto.Durability
}{
	{"set_durable", proto.DurDurable},
	{"set_relaxed", proto.DurRelaxed},
	{"set_fire", proto.DurFire},
}

const epochKeys = 8192

// epochDepth is the pipelined burst length every cell uses.
const epochDepth = 32

// runEpochMode measures every tier cell and appends them to the report
// under profile "epoch".
func runEpochMode(duration time.Duration, seed int64, report *benchReport) {
	srv, err := cacheserver.New(
		cacheserver.WithShards(4),
		cacheserver.WithMaxConns(8),
		cacheserver.WithEpochInterval(5*time.Millisecond),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	fmt.Printf("Durability tiers (native protocol over TCP, one in-process server, one\n")
	fmt.Printf("client connection, depth-%d set bursts; epoch interval 5ms; rate in requests/s)\n", epochDepth)
	fmt.Println()
	tbl := stats.Table{Header: []string{"variant", "req/s", "p50 us/req", "p99 us/req"}}
	addRow := func(cell benchCell) {
		tbl.AddRow(cell.Variant,
			fmt.Sprintf("%.0f", cell.BestMIterPerSec*1e6),
			fmt.Sprintf("%.1f", cell.P50Ns/1e3),
			fmt.Sprintf("%.1f", cell.P99Ns/1e3))
		report.Cells = append(report.Cells, cell)
	}
	for _, tc := range epochTiers {
		cell, err := runEpochCell(addr, tc.variant, tc.tier, false, duration, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		addRow(cell)
	}
	// The barrier cell: relaxed bursts with one wait each, per-write cost.
	cell, err := runEpochCell(addr, "set_relaxed_wait", proto.DurRelaxed, true, duration, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	addRow(cell)
	fmt.Print(tbl.String())
}

// runEpochCell drives one tier cell over a fresh connection: bursts of
// epochDepth sets at the given tier, plus — when withWait is set — one
// trailing `wait` barrier per burst. Percentiles are each burst's wall
// time divided by its write count, so the barrier's epoch-close stall
// shows up as amortized per-write cost.
func runEpochCell(addr, variant string, tier proto.Durability, withWait bool, duration time.Duration, seed int64) (benchCell, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return benchCell{}, err
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	na := proto.Native{}
	rng := rand.New(rand.NewSource(seed))

	readLine := func() error {
		_, err := r.ReadSlice('\n')
		return err
	}

	buf := make([]byte, 0, 1<<16)
	req := proto.Request{Cmd: proto.CmdSet, Dur: tier}

	var bursts []time.Duration
	requests := 0
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		buf = buf[:0]
		for i := 0; i < epochDepth; i++ {
			req.Cmd = proto.CmdSet
			req.Dur = tier
			req.KV = append(req.KV[:0], rng.Uint64()%epochKeys, rng.Uint64()%1000)
			buf = na.AppendRequest(buf, &req)
		}
		replies := epochDepth
		if withWait {
			// wait with no arguments: block until the persistent frontier
			// covers the epoch current at decode time — everything above.
			wreq := proto.Request{Cmd: proto.CmdWait}
			buf = na.AppendRequest(buf, &wreq)
			replies++
		}
		t0 := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return benchCell{}, err
		}
		for i := 0; i < replies; i++ {
			if err := readLine(); err != nil {
				return benchCell{}, fmt.Errorf("%s reply %d: %w", variant, i, err)
			}
		}
		bursts = append(bursts, time.Since(t0))
		requests += epochDepth
	}

	var total time.Duration
	for _, d := range bursts {
		total += d
	}
	perReq := func(q float64) float64 {
		if len(bursts) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), bursts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(epochDepth)
	}
	cell := benchCell{
		Profile:    "epoch",
		Variant:    variant,
		Threads:    1,
		Runs:       1,
		Iterations: uint64(requests),
		P50Ns:      perReq(0.50),
		P99Ns:      perReq(0.99),
	}
	if total > 0 {
		cell.BestMIterPerSec = float64(requests) / total.Seconds() / 1e6
		cell.MeanMIterPerSec = cell.BestMIterPerSec
	}
	return cell, nil
}
