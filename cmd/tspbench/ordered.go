package main

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"tsp/internal/cacheserver"
	"tsp/internal/proto"
	"tsp/internal/stats"
)

// The ordered-keyspace benchmark: an in-process cache server driven
// over TCP with zadd/zrange traffic. The interesting contrast is the
// two paths' cost structure — zadd pays the flat-combined Atlas batch
// like every map write, while zrange traverses the lock-free skip list
// with no critical section at all — so the mixed cell shows ordered
// reads riding for (nearly) free beside a write-heavy stream.

// orderedWorkloads are the benchmarked shapes: pure writes, pure
// bounded scans, and the 90/10 write/scan mix.
var orderedWorkloads = []string{"zadd", "zrange", "zmix"}

// orderedKeys bounds the ordered keyspace; zrange scans a window of
// orderedSpan keys capped at orderedLimit results.
const (
	orderedKeys  = 8192
	orderedSpan  = 256
	orderedLimit = 16
	orderedDepth = 16
)

// runOrderedMode measures every ordered workload cell and appends them
// to the report under profile "ordered".
func runOrderedMode(duration time.Duration, seed int64, report *benchReport) {
	srv, err := cacheserver.New(cacheserver.WithShards(4), cacheserver.WithMaxConns(8))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	fmt.Println("Ordered keyspace (persistent skip list over native protocol, one")
	fmt.Printf("in-process server, one connection, %d requests per write)\n", orderedDepth)
	fmt.Println()
	tbl := stats.Table{Header: []string{"workload", "req/s", "p50 us/req", "p99 us/req"}}
	for _, wl := range orderedWorkloads {
		cell, err := runOrderedCell(addr, wl, duration, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.AddRow(wl,
			fmt.Sprintf("%.0f", cell.BestMIterPerSec*1e6),
			fmt.Sprintf("%.1f", cell.P50Ns/1e3),
			fmt.Sprintf("%.1f", cell.P99Ns/1e3))
		report.Cells = append(report.Cells, cell)
	}
	fmt.Print(tbl.String())
}

// runOrderedCell drives one workload cell over a fresh connection.
// zadd answers one line per request; zrange answers VALUE lines
// terminated by END, so the reader consumes until the terminator.
func runOrderedCell(addr, workload string, duration time.Duration, seed int64) (benchCell, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return benchCell{}, err
	}
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	na := proto.Native{}
	rng := rand.New(rand.NewSource(seed))

	readLine := func() ([]byte, error) { return r.ReadSlice('\n') }
	readUntilEnd := func() error {
		for {
			line, err := readLine()
			if err != nil {
				return err
			}
			if bytes.HasPrefix(line, []byte("END")) || bytes.HasPrefix(line, []byte("ERROR")) {
				return nil
			}
		}
	}

	// Preload so scans hit a populated window.
	buf := make([]byte, 0, 1<<16)
	req := proto.Request{Cmd: proto.CmdZAdd}
	for k := uint64(0); k < orderedKeys; k++ {
		req.KV = append(req.KV[:0], k, k)
		buf = na.AppendRequest(buf, &req)
		if len(buf) >= 32<<10 || k == orderedKeys-1 {
			if _, err := conn.Write(buf); err != nil {
				return benchCell{}, err
			}
			buf = buf[:0]
		}
	}
	for k := 0; k < orderedKeys; k++ {
		if _, err := readLine(); err != nil {
			return benchCell{}, fmt.Errorf("preload reply %d: %w", k, err)
		}
	}

	// One burst = orderedDepth requests; kinds records each request's
	// reply shape so the reader knows single-line vs until-END.
	kinds := make([]proto.Cmd, 0, orderedDepth)
	appendReq := func(dst []byte) []byte {
		cmd := proto.CmdZAdd
		switch workload {
		case "zrange":
			cmd = proto.CmdZRange
		case "zmix":
			if rng.Intn(10) == 0 {
				cmd = proto.CmdZRange
			}
		}
		req.Cmd = cmd
		if cmd == proto.CmdZRange {
			lo := rng.Uint64() % orderedKeys
			req.KV = append(req.KV[:0], lo, lo+orderedSpan, orderedLimit)
		} else {
			req.KV = append(req.KV[:0], rng.Uint64()%orderedKeys, rng.Uint64()%1000)
		}
		kinds = append(kinds, cmd)
		return na.AppendRequest(dst, &req)
	}

	var bursts []time.Duration
	requests := 0
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		buf = buf[:0]
		kinds = kinds[:0]
		for i := 0; i < orderedDepth; i++ {
			buf = appendReq(buf)
		}
		t0 := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return benchCell{}, err
		}
		for _, k := range kinds {
			if k == proto.CmdZRange {
				err = readUntilEnd()
			} else {
				_, err = readLine()
			}
			if err != nil {
				return benchCell{}, fmt.Errorf("%s reply: %w", workload, err)
			}
		}
		bursts = append(bursts, time.Since(t0))
		requests += orderedDepth
	}

	var total time.Duration
	for _, d := range bursts {
		total += d
	}
	perReq := func(q float64) float64 {
		if len(bursts) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), bursts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(orderedDepth)
	}
	cell := benchCell{
		Profile:    "ordered",
		Variant:    workload,
		Threads:    1,
		Runs:       1,
		Iterations: uint64(requests),
		P50Ns:      perReq(0.50),
		P99Ns:      perReq(0.99),
	}
	if total > 0 {
		cell.BestMIterPerSec = float64(requests) / total.Seconds() / 1e6
		cell.MeanMIterPerSec = cell.BestMIterPerSec
	}
	return cell, nil
}
