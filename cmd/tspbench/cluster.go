package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsp/internal/cacheserver"
	"tsp/internal/cluster"
	"tsp/internal/proto"
	"tsp/internal/stats"
	"tsp/internal/telemetry"
)

// The cluster-tier benchmark: the same pipelined native traffic the
// -pipeline mode drives, but measured through the routing tier. The
// baseline is one node addressed directly; the comparison cells route
// the identical client load through one tspproxy over 1, 2, and 4
// cluster nodes (slot space split evenly), so the deltas isolate (a)
// the proxy hop's cost at depth 1 — the latency acceptance — and (b)
// how aggregate set+get throughput moves as the slot space spreads
// across nodes — the scaling acceptance. Every frontend connection
// multiplexes onto one shared pipelined backend connection per node,
// so the proxy's backend write count stays one per decoded batch.
//
// Caveat recorded with the committed numbers: on a single-core host
// every node, the proxy, and the clients compete for the same CPU, so
// node-count scaling measures scheduling overlap, not hardware
// parallelism; see EXPERIMENTS.md.

// clusterNodeCounts are the proxy cell sizes.
var clusterNodeCounts = []int{1, 2, 4}

// clusterClients is the concurrent frontend connection count per
// throughput cell.
const clusterClients = 4

// clusterKeys bounds the keyspace (preloaded, as in -pipeline).
const clusterKeys = 8192

// clusterDepth is the pipeline depth of the throughput cells.
const clusterDepth = 64

// runClusterMode measures the direct baseline and the proxy cells and
// appends them to the report under profile "cluster".
func runClusterMode(duration time.Duration, seed int64, report *benchReport) {
	fmt.Println("Cluster tier (native protocol over TCP; mixed 50/50 set+get; aggregate")
	fmt.Printf("req/s over %d pipelined connections at depth %d; p50 at depth 1)\n", clusterClients, clusterDepth)
	fmt.Println()
	tbl := stats.Table{Header: []string{"cell", "req/s", "p50 us/req", "p99 us/req"}}

	addCell := func(name, addr string, clients, depth int) benchCell {
		cell, err := runClusterCell(name, addr, clients, depth, duration, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.0f", cell.BestMIterPerSec*1e6),
			fmt.Sprintf("%.1f", cell.P50Ns/1e3),
			fmt.Sprintf("%.1f", cell.P99Ns/1e3))
		report.Cells = append(report.Cells, cell)
		return cell
	}

	// Direct baseline: one plain node, no routing tier in the path.
	direct, err := cacheserver.New(cacheserver.WithShards(2), cacheserver.WithMaxConns(clusterClients+4))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go direct.Serve()
	directThr := addCell("direct_mixed_d64", direct.Addr().String(), clusterClients, clusterDepth)
	directLat := addCell("direct_mixed_d1", direct.Addr().String(), 1, 1)
	direct.Close()

	// Proxy cells: n nodes splitting the slot space evenly, one proxy.
	var proxyThr, proxyLat benchCell
	for _, n := range clusterNodeCounts {
		nodes := make([]*cacheserver.Server, n)
		addrs := make([]string, n)
		for i := range nodes {
			lo, hi := i*cluster.NumSlots/n, (i+1)*cluster.NumSlots/n-1
			// One shard per node: the cluster already partitions the
			// keyspace by slot, so per-node sharding only multiplies
			// runnable workers per core.
			srv, err := cacheserver.New(
				cacheserver.WithShards(1),
				cacheserver.WithMaxConns(clusterClients+4),
				cacheserver.WithClusterSlots(fmt.Sprintf("%d-%d", lo, hi)),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			go srv.Serve()
			nodes[i] = srv
			addrs[i] = srv.Addr().String()
		}
		p, err := cluster.New(cluster.Config{Nodes: addrs, Tel: &telemetry.RouteStats{}})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cell := addCell(fmt.Sprintf("proxy%d_mixed_d64", n), p.Addr(), clusterClients, clusterDepth)
		if n == clusterNodeCounts[len(clusterNodeCounts)-1] {
			proxyThr = cell
			proxyLat = addCell(fmt.Sprintf("proxy%d_mixed_d1", n), p.Addr(), 1, 1)
		}
		p.Close()
		for _, srv := range nodes {
			srv.Close()
		}
	}
	fmt.Print(tbl.String())
	if directThr.BestMIterPerSec > 0 && directLat.P50Ns > 0 {
		fmt.Printf("\nproxy%d aggregate vs direct: %.2fx; proxy depth-1 p50 vs direct: %.2fx\n",
			clusterNodeCounts[len(clusterNodeCounts)-1],
			proxyThr.BestMIterPerSec/directThr.BestMIterPerSec,
			proxyLat.P50Ns/directLat.P50Ns)
	}
}

// runClusterCell drives one cell: `clients` connections to addr, each
// pipelining `depth`-request bursts of alternating set/get against a
// preloaded keyspace. Aggregate rate is total requests over the wall
// window; latency percentiles are per request (burst wall time divided
// by depth), as in the pipeline cells.
func runClusterCell(name, addr string, clients, depth int, duration time.Duration, seed int64) (benchCell, error) {
	// Preload on one connection so gets hit and sets overwrite.
	pre, err := net.Dial("tcp", addr)
	if err != nil {
		return benchCell{}, err
	}
	prer := bufio.NewReaderSize(pre, 1<<16)
	na := proto.Native{}
	buf := make([]byte, 0, 1<<16)
	req := proto.Request{Cmd: proto.CmdSet}
	sent := 0
	for k := uint64(0); k < clusterKeys; k++ {
		req.KV = append(req.KV[:0], k, k)
		buf = na.AppendRequest(buf, &req)
		sent++
		if len(buf) >= 32<<10 || k == clusterKeys-1 {
			if _, err := pre.Write(buf); err != nil {
				pre.Close()
				return benchCell{}, err
			}
			for ; sent > 0; sent-- {
				if _, err := prer.ReadSlice('\n'); err != nil {
					pre.Close()
					return benchCell{}, fmt.Errorf("%s preload: %w", name, err)
				}
			}
			buf = buf[:0]
		}
	}
	pre.Close()

	var total atomic.Uint64
	var mu sync.Mutex
	var bursts []time.Duration
	var firstErr error
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer conn.Close()
			r := bufio.NewReaderSize(conn, 1<<16)
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			var req proto.Request
			buf := make([]byte, 0, 1<<15)
			var local []time.Duration
			n := uint64(0)
			for time.Now().Before(deadline) {
				buf = buf[:0]
				for i := 0; i < depth; i++ {
					if i%2 == 0 {
						req.Cmd = proto.CmdSet
						req.KV = append(req.KV[:0], rng.Uint64()%clusterKeys, rng.Uint64()%1000)
					} else {
						req.Cmd = proto.CmdGet
						req.KV = append(req.KV[:0], rng.Uint64()%clusterKeys)
					}
					buf = na.AppendRequest(buf, &req)
				}
				t0 := time.Now()
				if _, err := conn.Write(buf); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				for i := 0; i < depth; i++ {
					if _, err := r.ReadSlice('\n'); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s reply: %w", name, err)
						}
						mu.Unlock()
						return
					}
				}
				local = append(local, time.Since(t0))
				n += uint64(depth)
			}
			total.Add(n)
			mu.Lock()
			bursts = append(bursts, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return benchCell{}, firstErr
	}

	perReq := func(q float64) float64 {
		if len(bursts) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), bursts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(depth)
	}
	cell := benchCell{
		Profile:    "cluster",
		Variant:    name,
		Threads:    clients,
		Runs:       1,
		Iterations: total.Load(),
		P50Ns:      perReq(0.50),
		P99Ns:      perReq(0.99),
	}
	if elapsed > 0 {
		cell.BestMIterPerSec = float64(total.Load()) / elapsed.Seconds() / 1e6
		cell.MeanMIterPerSec = cell.BestMIterPerSec
	}
	return cell, nil
}
