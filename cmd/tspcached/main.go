// Command tspcached serves a miniature memcached-style cache backed by
// the crash-resilient persistent-heap stack — the application shape the
// paper's Atlas work was evaluated on. Connect with any line-oriented
// TCP client (nc, telnet):
//
//	$ go run ./cmd/tspcached -addr 127.0.0.1:11222 &
//	$ printf 'set 1 100\r\nincr 1 11\r\ncrash\r\nget 1\r\nquit\r\n' | nc 127.0.0.1 11222
//	STORED
//	111
//	OK RECOVERED
//	VALUE 1 111
//
// The crash command simulates a power failure with a TSP rescue and
// runs the full recovery path (heap reopen, Atlas rollback, verify);
// the data is still there, as Section 4.2 promises.
//
// Usage:
//
//	tspcached [-addr 127.0.0.1:11222] [-mode tsp|nontsp|off] [-conns 16]
package main

import (
	"flag"
	"fmt"
	"os"

	"tsp/internal/atlas"
	"tsp/internal/cacheserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "TCP listen address")
	mode := flag.String("mode", "tsp", "fortification: tsp (log only), nontsp (log+flush), off (unfortified)")
	conns := flag.Int("conns", 16, "maximum concurrent connections")
	flag.Parse()

	var m atlas.Mode
	switch *mode {
	case "tsp":
		m = atlas.ModeTSP
	case "nontsp":
		m = atlas.ModeNonTSP
	case "off":
		m = atlas.ModeOff
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	srv, err := cacheserver.New(cacheserver.Config{
		Addr:     *addr,
		Mode:     m,
		MaxConns: *conns,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tspcached listening on %s (mode %s, %d connection slots)\n", srv.Addr(), m, *conns)
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
