// Command tspcached serves a sharded, memcached-style cache backed by
// the crash-resilient persistent-heap stack — the application shape the
// paper's Atlas work was evaluated on. Keys are hashed across N
// independent storage stacks, so operations on different shards never
// contend. Connect with any line-oriented TCP client (nc, telnet):
//
//	$ go run ./cmd/tspcached -addr 127.0.0.1:11222 -shards 4 &
//	$ printf 'mset 1 100 2 200\r\nincr 1 11\r\ncrash\r\nmget 1 2\r\nquit\r\n' | nc 127.0.0.1 11222
//	STORED 2
//	111
//	OK RECOVERED
//	VALUE 1 111
//	VALUE 2 200
//	END
//
// The crash command simulates a power failure with a TSP rescue on
// every shard (crash <n> takes down just one, while the rest keep
// serving) and runs the full recovery path (heap reopen, Atlas
// rollback, verify); the data is still there, as Section 4.2 promises.
// The stats command reports aggregate counters — including every
// layer's telemetry (device flushes, Atlas log appends, map ops) and
// op-latency percentiles; stats shards breaks them down per shard,
// including recovery counts and latencies. With -metrics-addr the same
// telemetry is additionally served as Prometheus-style text over HTTP:
//
//	$ tspcached -metrics-addr 127.0.0.1:9090 &
//	$ curl -s http://127.0.0.1:9090/metrics | grep tsp_nvm_flushes
//
// The server also speaks RESP2 (the redis wire protocol): by default
// each connection's protocol is sniffed from its first byte, so
// redis-cli and redis-benchmark work against the same listener with no
// configuration — non-numeric keys and values hash into the integer
// keyspace:
//
//	$ redis-cli -p 11222 set 1 42
//	OK
//	$ redis-benchmark -p 11222 -t set,get -P 8
//
// -proto pins a listener to one protocol instead of sniffing;
// -max-request-bytes bounds a single request's wire size (oversized
// requests are answered with an error — the native protocol then
// resynchronizes at the next newline, RESP tears the connection down).
//
// Every mutating command accepts a trailing durability tier: `durable`
// (the default — committed before the ack), `relaxed` (acked from a
// volatile overlay and persisted when the current epoch closes, so a
// crash loses at most -epoch-interval of relaxed writes; the ack
// carries an `@<epoch>` receipt redeemable against the crash reply's
// `OK RECOVERED EPOCH <p>` frontier), or `fire` (acked before any
// state is consulted). `wait` blocks until the persistent frontier
// covers the caller's relaxed writes; `wait repl` until followers have
// acknowledged its durable writes:
//
//	$ printf 'set 1 100 relaxed\r\nwait\r\ncrash\r\nget 1\r\nquit\r\n' | nc 127.0.0.1 11222
//	STORED @3
//	4
//	OK RECOVERED EPOCH 4
//	VALUE 1 100
//
// -epoch-interval sets the clock period (and therefore the relaxed
// tier's loss bound); 0 disables the tiers, degrading relaxed and fire
// to durable.
//
// Exactly-once retries: `session <id>` binds the connection to a client
// session, and a `seq=<n>` option on a mutating command makes it a
// detectable operation — the per-shard dedup window (sized by
// -session-window) recognizes a duplicate retry and replays the
// recorded ack instead of re-applying, across crash recovery and
// follower promotion alike. docs/PROTOCOL.md is the canonical wire
// reference for the session grammar and its error strings.
//
// Usage:
//
//	tspcached [-addr 127.0.0.1:11222] [-mode tsp|nontsp|off] [-shards 4]
//	          [-conns 16] [-words 1048576] [-metrics-addr host:port]
//	          [-batch-max 64] [-queue-depth 256] [-optimistic-reads=true]
//	          [-proto auto|native|resp] [-max-request-bytes 1048576]
//	          [-repl-listen host:port | -replica-of host:port]
//	          [-repl-window 4096] [-epoch-interval 5ms]
//	          [-session-window 256] [-cluster-slots 0-31]
//
// Each shard batches queued requests — from any connection — into one
// Atlas critical section per drained group (up to -batch-max ops),
// amortizing the per-section persistence cost across the batch;
// -batch-max 0 disables batching and serves every request on the
// synchronous per-op path. -queue-depth bounds each shard's pending
// queue; when it is full, requests degrade to the synchronous path
// instead of waiting (the stats report the fallbacks).
//
// Pure reads (get, and mget when every key validates) are served by a
// lock-free seqlock path that takes no Atlas mutex and never enters the
// batch pipeline — the paper's recovery-observer argument applied to
// the hot path. -optimistic-reads=false routes every read through the
// locked machinery instead (the pre-optimistic behavior, useful for
// benchmarking the difference).
//
// Replication (the preventive tier for site-disaster failure classes —
// see internal/repl): -repl-listen makes this process a primary that
// streams every committed batch group to connected followers;
// -replica-of starts a read-only follower applying the stream from the
// primary's replication listener, promotable over the wire with the
// "promote" command after the primary's site is lost:
//
//	$ tspcached -addr 127.0.0.1:11222 -repl-listen 127.0.0.1:12222 &
//	$ tspcached -addr 127.0.0.1:11223 -replica-of 127.0.0.1:12222 &
//	$ printf 'set 1 100\r\nquit\r\n' | nc 127.0.0.1 11222
//	$ kill -9 %1
//	$ printf 'promote\r\nget 1\r\nquit\r\n' | nc 127.0.0.1 11223
//	OK PROMOTED
//	VALUE 1 100
//
// Clustering (horizontal scale-out): -cluster-slots makes this process
// one node of a cluster owning the given hash slots. Keyed requests
// for other slots are answered with a MOVED redirect, the `migrate`
// command hands a slot to another node live (data, session windows,
// and in-flight writes included), and cmd/tspproxy serves the whole
// cluster behind one address.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/cacheserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "TCP listen address")
	mode := flag.String("mode", "tsp", "fortification: tsp (log only), nontsp (log+flush), off (unfortified)")
	shards := flag.Int("shards", 4, "independent storage shards")
	conns := flag.Int("conns", 16, "served connections; excess connections queue (backpressure)")
	words := flag.Int("words", 1<<20, "simulated NVM words per shard")
	metricsAddr := flag.String("metrics-addr", "", "HTTP metrics listen address (Prometheus text at /metrics); empty disables")
	batchMax := flag.Int("batch-max", 64, "max ops per batched critical section; 0 disables batching")
	queueDepth := flag.Int("queue-depth", 256, "per-shard pending-request queue bound")
	optimisticReads := flag.Bool("optimistic-reads", true, "serve pure reads on the lock-free seqlock path (no Atlas mutex, no batching)")
	protoFlag := flag.String("proto", "auto", "wire protocol: auto (sniff per connection), native (text), resp (RESP2)")
	maxRequestBytes := flag.Int("max-request-bytes", 1<<20, "single-request wire-size ceiling; oversized requests are answered with an error")
	replListen := flag.String("repl-listen", "", "replication listen address: stream committed batches to followers (primary role); empty disables")
	replicaOf := flag.String("replica-of", "", "primary's replication address: apply its stream read-only until promoted (follower role); empty disables")
	replWindow := flag.Int("repl-window", 4096, "committed groups the replication log retains; reconnects beyond it trigger a snapshot transfer")
	epochInterval := flag.Duration("epoch-interval", 5*time.Millisecond, "durability epoch clock period — the relaxed tier's crash-loss bound; 0 disables the tiers")
	sessionWindow := flag.Int("session-window", 256, "per-shard session dedup records for exactly-once retries; the oldest is evicted when full")
	clusterSlots := flag.String("cluster-slots", "", "hash slots this node owns (\"lo-hi,lo\", \"all\", or \"none\"): serve as a cluster node, answering MOVED for other slots; empty disables")
	flag.Parse()

	var m atlas.Mode
	switch *mode {
	case "tsp":
		m = atlas.ModeTSP
	case "nontsp":
		m = atlas.ModeNonTSP
	case "off":
		m = atlas.ModeOff
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	srv, err := cacheserver.New(
		cacheserver.WithAddr(*addr),
		cacheserver.WithMode(m),
		cacheserver.WithShards(*shards),
		cacheserver.WithMaxConns(*conns),
		cacheserver.WithDeviceWords(*words),
		cacheserver.WithMetricsAddr(*metricsAddr),
		cacheserver.WithBatchMax(*batchMax),
		cacheserver.WithQueueDepth(*queueDepth),
		cacheserver.WithOptimisticReads(*optimisticReads),
		cacheserver.WithProto(*protoFlag),
		cacheserver.WithMaxRequestBytes(*maxRequestBytes),
		cacheserver.WithReplListen(*replListen),
		cacheserver.WithReplicaOf(*replicaOf),
		cacheserver.WithReplWindow(*replWindow),
		cacheserver.WithEpochInterval(*epochInterval),
		cacheserver.WithSessionWindow(*sessionWindow),
		cacheserver.WithClusterSlots(*clusterSlots),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tspcached listening on %s (mode %s, %d shards, %d connection slots)\n",
		srv.Addr(), m, srv.NumShards(), *conns)
	if ma := srv.MetricsAddr(); ma != nil {
		fmt.Printf("metrics at http://%s/metrics\n", ma)
	}
	if ra := srv.ReplAddr(); ra != nil {
		fmt.Printf("replication: primary streaming on %s\n", ra)
	}
	if *replicaOf != "" {
		fmt.Printf("replication: following %s (read-only until promote)\n", *replicaOf)
	}
	if *clusterSlots != "" {
		fmt.Printf("cluster: serving slots %s\n", *clusterSlots)
	}
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
