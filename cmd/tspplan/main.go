// Command tspplan runs the Section 3 decision procedure: given a set of
// tolerated failures, the application's isolation style, and a hardware
// profile, it derives the minimal fault-tolerance mechanism — whether a
// Timely Sufficient Persistence design exists (procrastination), what
// the crash-time rescue does, what residual runtime overhead remains,
// and what recovery must do.
//
// Usage:
//
//	tspplan [-failures process-crash,kernel-panic] [-isolation mutex-based]
//	        [-hardware nvram] [-corrupting]
//
// Hardware profiles: desktop, server-ups, nvdimm, nvram, legacy, geo.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tsp/internal/core"
)

var hardwareProfiles = map[string]func() core.Hardware{
	"desktop":    core.ConventionalDesktop,
	"server-ups": core.ConventionalServerUPS,
	"nvdimm":     core.NVDIMMServer,
	"nvram":      core.NVRAMMachine,
	"legacy":     core.DiskOnlyLegacy,
	"geo":        core.GeoReplicated,
}

var failureNames = map[string]core.Failure{
	"process-crash": core.ProcessCrash,
	"kernel-panic":  core.KernelPanic,
	"power-outage":  core.PowerOutage,
	"site-disaster": core.SiteDisaster,
}

// matrix prints a one-line plan summary for every hardware profile and
// failure class — the Section 3 decision table, mechanically derived.
func matrix(isolation core.Isolation) {
	hwNames := []string{"desktop", "server-ups", "nvdimm", "nvram", "legacy", "geo"}
	fmt.Printf("%-12s", "")
	for _, f := range core.AllFailures() {
		fmt.Printf(" %-22s", f)
	}
	fmt.Println()
	for _, name := range hwNames {
		hw := hardwareProfiles[name]()
		fmt.Printf("%-12s", name)
		for _, f := range core.AllFailures() {
			req := core.Requirements{Tolerate: []core.Failure{f}, Isolation: isolation}
			plan, err := core.DerivePlan(req, hw)
			switch {
			case err != nil:
				fmt.Printf(" %-22s", "UNSATISFIABLE")
			case plan.TSP:
				fmt.Printf(" %-22s", "TSP/"+plan.Overhead.String())
			default:
				fmt.Printf(" %-22s", "prevent/"+plan.Overhead.String())
			}
		}
		fmt.Println()
	}
}

func main() {
	failures := flag.String("failures", "process-crash", "comma-separated tolerated failures: process-crash, kernel-panic, power-outage, site-disaster")
	isolation := flag.String("isolation", "mutex-based", "isolation style: mutex-based or non-blocking")
	hardware := flag.String("hardware", "nvram", "hardware profile: desktop, server-ups, nvdimm, nvram, legacy, geo")
	corrupting := flag.Bool("corrupting", false, "tolerated failures may corrupt data inside critical sections")
	showMatrix := flag.Bool("matrix", false, "print the full hardware x failure decision table and exit")
	flag.Parse()

	if *showMatrix {
		iso := core.MutexBased
		if *isolation == "non-blocking" {
			iso = core.NonBlocking
		}
		fmt.Printf("decision matrix (%s isolation): mechanism/overhead per hardware x failure\n\n", iso)
		matrix(iso)
		return
	}

	hwf, ok := hardwareProfiles[*hardware]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown hardware profile %q\n", *hardware)
		os.Exit(2)
	}
	var req core.Requirements
	for _, name := range strings.Split(*failures, ",") {
		f, ok := failureNames[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown failure class %q\n", name)
			os.Exit(2)
		}
		req.Tolerate = append(req.Tolerate, f)
	}
	switch *isolation {
	case "mutex-based":
		req.Isolation = core.MutexBased
	case "non-blocking":
		req.Isolation = core.NonBlocking
	default:
		fmt.Fprintf(os.Stderr, "unknown isolation style %q\n", *isolation)
		os.Exit(2)
	}
	if *corrupting {
		req.Mode = core.Corrupting
	}

	hw := hwf()
	fmt.Printf("requirements: tolerate %s; %s failures; %s isolation\n",
		*failures, req.Mode, req.Isolation)
	fmt.Printf("hardware:     %s (memory=%s, energy=%s)\n\n", *hardware, hw.Memory, hw.Energy)

	plan, err := core.DerivePlan(req, hw)
	if err != nil {
		fmt.Printf("UNSATISFIABLE: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(plan)
}
