// Command tspsoak is a crash-recovery fuzzer: it runs continuous
// random crash-inject-recover-verify cycles across the fortified
// variants, randomizing the variant, thread count, crash instant and —
// within each variant's soundness envelope — the rescue fraction, until
// the time budget expires or an inconsistency is found.
//
// This is the long-running counterpart of cmd/faultinject's fixed
// campaign: where the paper reports "hundreds of injected crashes", a
// soak run makes that thousands, with the configuration space explored
// instead of fixed.
//
// Usage:
//
//	tspsoak [-for 30s] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tsp/internal/harness"
)

func main() {
	budget := flag.Duration("for", 30*time.Second, "soak duration")
	seed := flag.Int64("seed", 1, "master seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*budget)
	runs, inconsistent := 0, 0
	perVariant := map[harness.Variant]int{}

	for time.Now().Before(deadline) {
		// Pick a configuration within the soundness envelope:
		// non-blocking and Atlas-TSP require a full rescue; Atlas
		// non-TSP tolerates any rescue fraction.
		var variant harness.Variant
		var rescue float64
		switch rng.Intn(3) {
		case 0:
			variant, rescue = harness.NonBlocking, 1
		case 1:
			variant, rescue = harness.MutexAtlasTSP, 1
		default:
			variant, rescue = harness.MutexAtlasNonTSP, rng.Float64()
		}
		cfg := harness.Config{
			Variant:     variant,
			Threads:     1 + rng.Intn(8),
			HighKeys:    1 << (8 + rng.Intn(6)),
			Buckets:     1 << (8 + rng.Intn(6)),
			DeviceWords: 1 << 21,
			Seed:        rng.Int63(),
		}
		opts := harness.CrashOptions{
			RescueFraction: rescue,
			MinRun:         time.Millisecond,
			MaxRun:         time.Duration(1+rng.Intn(15)) * time.Millisecond,
		}
		res, err := harness.RunCrash(cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak run error: %v\n", err)
			os.Exit(1)
		}
		runs++
		perVariant[variant]++
		if !res.OK() {
			inconsistent++
			fmt.Printf("INCONSISTENT: %s\n  config: %+v\n  recovery err: %v\n",
				res, cfg, res.RecoveryErr)
		}
	}

	fmt.Printf("soak complete: %d crash-recover cycles in %v\n", runs, *budget)
	for _, v := range harness.AllVariants() {
		if perVariant[v] > 0 {
			fmt.Printf("  %-18s %d runs\n", v, perVariant[v])
		}
	}
	if inconsistent > 0 {
		fmt.Printf("FAILURES: %d inconsistent recoveries\n", inconsistent)
		os.Exit(1)
	}
	fmt.Println("every recovery was consistent")
}
