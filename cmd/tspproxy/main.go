// Command tspproxy serves the cluster routing tier: one listener that
// terminates client connections (native or RESP, sniffed per
// connection exactly like tspcached) and routes every request to the
// cluster node that owns its hash slot, multiplexing all frontend
// traffic onto one pipelined backend connection per node. Multi-key
// commands (mget, mset, delete) are split per slot owner and the
// partial replies merged back in request order; ordered-keyspace
// commands (zrange, zcount) and wait fan out to every node and k-way
// merge / aggregate. Clients keep the single-server wire protocol —
// the proxy is where the cluster stops being their problem:
//
//	$ tspcached -addr 127.0.0.1:11222 -cluster-slots 0-31 &
//	$ tspcached -addr 127.0.0.1:11223 -cluster-slots 32-63 &
//	$ tspproxy -addr 127.0.0.1:11300 -nodes 127.0.0.1:11222,127.0.0.1:11223 &
//	$ printf 'mset 1 100 2 200 3 300\r\nmget 1 2 3\r\nquit\r\n' | nc 127.0.0.1 11300
//	STORED 3
//	VALUE 1 100
//	VALUE 2 200
//	VALUE 3 300
//	END
//
// The proxy seeds its routing table from -nodes and each node's
// `cluster` reply, then follows the cluster live: a node answering
// MOVED updates the ring in place, so a `migrate <slot> <addr>` issued
// through the proxy (or directly to a node) redirects traffic without
// a restart or a config push. Session semantics survive routing — the
// proxy tracks each frontend connection's `session <id>` binding and
// prefixes forwarded sessioned commands with a rebind on the shared
// backend connection, so exactly-once `seq=` retries dedup on the
// owning node exactly as they would point-to-point.
//
// The stats command answers from the proxy itself with route_* and
// per-node counters (the cluster-tier telemetry vocabulary); `cluster`
// prints the proxy's current slot table. Admin verbs that only make
// sense on a node (crash, promote) are refused with a pointer to
// connect directly.
//
// Usage:
//
//	tspproxy -nodes host:port[,host:port...] [-addr 127.0.0.1:11300]
//	         [-vnodes 64] [-proto auto|native|resp]
//	         [-max-request-bytes 1048576]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tsp/internal/cluster"
	"tsp/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11300", "TCP listen address")
	nodes := flag.String("nodes", "", "comma-separated cluster node addresses (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the consistent-hash ring")
	protoFlag := flag.String("proto", "auto", "frontend wire protocol: auto (sniff per connection), native (text), resp (RESP2)")
	maxRequestBytes := flag.Int("max-request-bytes", 1<<20, "single-request wire-size ceiling; oversized requests are answered with an error")
	flag.Parse()

	var seeds []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			seeds = append(seeds, n)
		}
	}
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "tspproxy: -nodes is required (comma-separated node addresses)")
		os.Exit(2)
	}

	p, err := cluster.New(cluster.Config{
		Addr:            *addr,
		Nodes:           seeds,
		VNodes:          *vnodes,
		Proto:           *protoFlag,
		MaxRequestBytes: *maxRequestBytes,
		Tel:             &telemetry.RouteStats{},
		Logf:            log.New(os.Stderr, "tspproxy: ", log.LstdFlags).Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("tspproxy listening on %s (%d nodes, %d slots)\n",
		p.Addr(), len(seeds), cluster.NumSlots)
	for _, n := range seeds {
		fmt.Printf("  node %s\n", n)
	}

	// The proxy serves from its own goroutines; hold main until asked
	// to stop, then tear every connection down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := p.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
