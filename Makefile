GO ?= go

.PHONY: build test check bench-shards bench-json bench-telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: vet + build + race-detector pass on the
# concurrency-heavy packages + the full suite. See scripts/check.sh.
check:
	sh scripts/check.sh

# The sharding acceptance benchmark: multi-shard must beat single-shard
# at >= 4 goroutines.
bench-shards:
	$(GO) test -run 'ZZZ' -bench 'Shards|Mget' -cpu 4,8 -benchtime 300000x ./internal/cacheserver

# Machine-readable Table 1 run: writes BENCH_tspbench.json next to the
# human-readable output, for tracking perf across commits.
bench-json:
	$(GO) run ./cmd/tspbench -duration 500ms -json -out BENCH_tspbench.json

# The telemetry overhead guard: counting on vs off at the device and map
# layers must stay within a few percent.
bench-telemetry:
	$(GO) test -run 'ZZZ' -bench 'StoreTelemetry|LoadTelemetry' -benchtime 2000000x ./internal/nvm
	$(GO) test -run 'ZZZ' -bench 'PutTelemetry' -benchtime 300000x ./internal/hashmap
