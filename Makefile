GO ?= go

.PHONY: build test check bench-shards bench-json bench-telemetry bench-batch bench-diff \
	bench-repl bench-read bench-pipeline bench-ordered bench-epoch bench-session \
	bench-cacheserver-baseline demo-repl campaign-durability campaign-exactly-once \
	campaign-cluster bench-cluster check-docs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: vet + build + race-detector pass on the
# concurrency-heavy packages + the full suite. See scripts/check.sh.
check:
	sh scripts/check.sh

# The sharding acceptance benchmark: multi-shard must beat single-shard
# at >= 4 goroutines.
bench-shards:
	$(GO) test -run 'ZZZ' -bench 'Shards|Mget' -cpu 4,8 -benchtime 300000x ./internal/cacheserver

# Machine-readable Table 1 run: writes BENCH_tspbench.json next to the
# human-readable output, for tracking perf across commits.
bench-json:
	$(GO) run ./cmd/tspbench -duration 500ms -json -out BENCH_tspbench.json

# The batch-pipeline acceptance benchmark, at 8 concurrent clients:
# per-op latency parity on single sets (batched config vs BatchMax 0)
# and throughput improvement on the batched mutation workload (8-key
# msets), with client-observed p50/p95 command latency and mean
# ops/batch as extra metrics.
bench-batch:
	$(GO) test -run 'ZZZ' -bench 'SetsBatched|SetsUnbatched|MsetsBatched|MsetsUnbatched' -cpu 8 -benchtime 50000x ./internal/cacheserver

# Compare the working BENCH_tspbench.json against the baseline
# committed at HEAD; soft gate (report-only) unless BENCH_DIFF_STRICT=1.
bench-diff:
	sh scripts/bench_diff.sh

# The replication overhead comparison: the pure-set workload with a
# streaming in-process follower attached vs standalone. The On variant
# also reports the ack-measured lag percentiles.
bench-repl:
	$(GO) test -run 'ZZZ' -bench 'SetsRepl' -cpu 8 -benchtime 50000x ./internal/cacheserver

# The optimistic-read acceptance benchmark, at 8 concurrent clients:
# pure-get scaling at 1/4/8 shards and the 90/10 get/set mix, seqlock
# read path vs the locked one. Optimistic pure-get throughput must beat
# locked by >= 1.5x, and the mix's get p50 must be no worse.
bench-read:
	$(GO) test -run 'ZZZ' -bench 'Gets(Optimistic|Locked)|ReadMix' -cpu 8 -benchtime 50000x ./internal/cacheserver

# The pipelined wire-codec benchmark: an in-process server driven over
# TCP at pipeline depths 1/8/64. Cells merge into BENCH_tspbench.json
# under profile "pipeline" (the Table-1 cells are preserved), where
# bench-diff's soft gate tracks them like any other throughput cell.
bench-pipeline:
	$(GO) run ./cmd/tspbench -pipeline -duration 500ms -depths 1,8,64 -json -out BENCH_tspbench.json

# The ordered-keyspace benchmark: zadd/zrange/mixed traffic against the
# persistent skip list over the native protocol. Cells merge into
# BENCH_tspbench.json under profile "ordered".
bench-ordered:
	$(GO) run ./cmd/tspbench -ordered -duration 500ms -json -out BENCH_tspbench.json

# The durability-tier benchmark: depth-32 set bursts acked durable vs
# relaxed vs fire, plus a relaxed burst closed by one wait barrier.
# Cells merge into BENCH_tspbench.json under profile "epoch".
bench-epoch:
	$(GO) run ./cmd/tspbench -epoch -duration 500ms -json -out BENCH_tspbench.json

# The durability-tier crash campaign: a full cache server under mixed
# durable/relaxed/wait traffic, crashed every cycle; durable and
# wait-covered writes must always survive, relaxed losses must stay
# above the receipt's epoch frontier. check.sh runs this 3x under -race.
campaign-durability:
	$(GO) run ./cmd/faultinject -durability-only -durability-cycles 10

# The exactly-once retry campaign: a replicated pair under a sessioned
# retry storm (every mutation resent as a lost-ack duplicate), with a
# power failure mid-storm and a follower promotion per cycle; no
# duplicate may ever apply twice. check.sh runs this 3x under -race.
campaign-exactly-once:
	$(GO) run ./cmd/faultinject -exactly-once -exactly-once-cycles 4

# The cluster crash-and-rebalance campaign: three nodes behind the
# routing proxy under a duplicate-send storm, one owning node crashed
# mid-storm, then every one of its slots migrated away while traffic
# continues; zero acked-write loss across the flips, exactly-once
# replay on the new owners, MOVED correctness on the old one.
# check.sh runs this 3x under -race.
campaign-cluster:
	$(GO) run ./cmd/faultinject -cluster -cluster-cycles 3

# The cluster-tier benchmark: the pipelined mixed workload direct to
# one node vs through tspproxy over 1/2/4 nodes splitting the slot
# space. Cells merge into BENCH_tspbench.json under profile "cluster".
# Single-core hosts understate the proxy cells badly — see the cluster
# section of EXPERIMENTS.md before reading the ratios.
bench-cluster:
	$(GO) run ./cmd/tspbench -cluster -duration 500ms -json -out BENCH_tspbench.json

# The exactly-once session benchmark: seq-tagged increments vs the plain
# baseline, durable and relaxed, plus the pure duplicate-replay rate.
# Cells merge into BENCH_tspbench.json under profile "session".
bench-session:
	$(GO) run ./cmd/tspbench -session -duration 500ms -json -out BENCH_tspbench.json

# The doc-drift gate: the flag tables in README.md and docs/PROTOCOL.md
# must list exactly the live `tspcached -help` flags, and the command
# tables in docs/PROTOCOL.md must cover both adapters' command sets.
check-docs:
	sh scripts/check_docs.sh

# Record the cacheserver go-bench baseline that bench-diff compares
# ns/op against. Commit the refreshed BENCH_cacheserver.txt when the
# numbers move for a known reason.
bench-cacheserver-baseline:
	$(GO) test -run 'ZZZ' -bench 'Sets|Msets|Mget8|GetsOptimistic|GetsLocked|ReadMix' -cpu 8 -benchtime 20000x \
		./internal/cacheserver | tee BENCH_cacheserver.txt

# The replication acceptance campaign: two real tspcached processes,
# load, SIGKILL the primary, promote the follower, verify Equations 1
# and 2 on the promoted copy. See cmd/repldemo.
demo-repl:
	$(GO) run ./cmd/repldemo

# The telemetry overhead guard: counting on vs off at the device and map
# layers must stay within a few percent.
bench-telemetry:
	$(GO) test -run 'ZZZ' -bench 'StoreTelemetry|LoadTelemetry' -benchtime 2000000x ./internal/nvm
	$(GO) test -run 'ZZZ' -bench 'PutTelemetry' -benchtime 300000x ./internal/hashmap
