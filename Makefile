GO ?= go

.PHONY: build test check bench-shards

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: vet + build + race-detector pass on the
# concurrency-heavy packages + the full suite. See scripts/check.sh.
check:
	sh scripts/check.sh

# The sharding acceptance benchmark: multi-shard must beat single-shard
# at >= 4 goroutines.
bench-shards:
	$(GO) test -run 'ZZZ' -bench 'Shards|Mget' -cpu 4,8 -benchtime 300000x ./internal/cacheserver
