// kvstore: the Section 4.2 case study end to end — a mutex-based
// key-value store fortified by the Atlas runtime, crashed in the middle
// of a multi-store critical section, and recovered by rollback.
//
// The store's entries carry an integrity word (check = hash(key,value));
// an update writes value then check, so a crash between the two leaves a
// *detectably* corrupt entry unless the enclosing outermost critical
// section is rolled back. The demo runs the same torn update three ways:
//
//  1. unfortified (ModeOff) + TSP rescue  -> recovery observes corruption;
//
//  2. Atlas TSP mode (log only) + rescue  -> rollback, consistent;
//
//  3. Atlas non-TSP (log+flush) + NO rescue -> rollback from the
//     synchronously flushed log, consistent even though the cache died.
//
//     go run ./examples/kvstore
package main

import (
	"errors"
	"fmt"
	"log"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func main() {
	scenarios := []struct {
		name   string
		mode   atlas.Mode
		rescue float64
	}{
		{"unfortified + TSP rescue", atlas.ModeOff, 1},
		{"Atlas TSP mode (log only) + TSP rescue", atlas.ModeTSP, 1},
		{"Atlas non-TSP (log+flush) + NO rescue", atlas.ModeNonTSP, 0},
	}
	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n", sc.name)
		runScenario(sc.mode, sc.rescue)
		fmt.Println()
	}
}

func runScenario(mode atlas.Mode, rescue float64) {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		log.Fatalf("format: %v", err)
	}
	rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 4})
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}
	m, err := hashmap.New(rt, 1024, 128)
	if err != nil {
		log.Fatalf("hashmap: %v", err)
	}
	heap.SetRoot(m.Ptr())
	dev.FlushAll() // setup is not in the crash window

	th, err := rt.NewThread()
	if err != nil {
		log.Fatalf("thread: %v", err)
	}
	// Committed state: account balances.
	for k := uint64(1); k <= 10; k++ {
		if err := m.Put(th, k, 1000); err != nil {
			log.Fatalf("put: %v", err)
		}
	}

	// A transfer begins: the OCS updates two accounts but the crash
	// lands after the first value store, before its integrity word.
	// (TornUpdate is a test hook exposed by the map precisely to let
	// fault-injection land between the two stores.)
	m.TornUpdate(th, 3, 250)
	fmt.Println("  crash lands mid-critical-section (value written, check word not)")

	dev.StopEvictor()
	dev.Crash(nvm.CrashOptions{RescueFraction: rescue, Seed: 7})
	dev.Restart()

	// New incarnation: open, recover, verify.
	heap2, err := pheap.Open(dev)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	rep, err := atlas.Recover(heap2)
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	fmt.Printf("  recovery: %s\n", rep)

	rt2, err := atlas.New(heap2, mode, atlas.Options{MaxThreads: 4})
	if err != nil {
		log.Fatalf("atlas reopen: %v", err)
	}
	m2, err := hashmap.Open(rt2, heap2.Root())
	if err != nil {
		log.Fatalf("hashmap reopen: %v", err)
	}
	if _, err := m2.Verify(); err != nil {
		if errors.Is(err, hashmap.ErrCorrupt) {
			fmt.Printf("  VERDICT: map corrupt, as expected without Atlas: %v\n", err)
			return
		}
		log.Fatalf("verify: %v", err)
	}
	th2, _ := rt2.NewThread()
	v, _, _ := m2.Get(th2, 3)
	fmt.Printf("  VERDICT: map consistent; account 3 = %d (torn update rolled back)\n", v)
}
