// kvstore: the Section 4.2 case study end to end — a mutex-based
// key-value store fortified by the Atlas runtime, crashed in the middle
// of a multi-store critical section, and recovered by rollback.
//
// The store's entries carry an integrity word (check = hash(key,value));
// an update writes value then check, so a crash between the two leaves a
// *detectably* corrupt entry unless the enclosing outermost critical
// section is rolled back. The demo runs the same torn update three ways:
//
//  1. unfortified (ModeOff) + TSP rescue  -> recovery observes corruption;
//
//  2. Atlas TSP mode (log only) + rescue  -> rollback, consistent;
//
//  3. Atlas non-TSP (log+flush) + NO rescue -> rollback from the
//     synchronously flushed log, consistent even though the cache died.
//
// The storage stack (device, heap, runtime, map) is assembled and
// recovered by internal/stack; this file only drives the workload.
//
//	go run ./examples/kvstore
package main

import (
	"errors"
	"fmt"
	"log"

	"tsp/internal/atlas"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/stack"
)

func main() {
	scenarios := []struct {
		name   string
		mode   atlas.Mode
		rescue float64
	}{
		{"unfortified + TSP rescue", atlas.ModeOff, 1},
		{"Atlas TSP mode (log only) + TSP rescue", atlas.ModeTSP, 1},
		{"Atlas non-TSP (log+flush) + NO rescue", atlas.ModeNonTSP, 0},
	}
	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n", sc.name)
		runScenario(sc.mode, sc.rescue)
		fmt.Println()
	}
}

func runScenario(mode atlas.Mode, rescue float64) {
	st, err := stack.New(
		stack.WithDeviceWords(1<<20),
		stack.WithMode(mode),
		stack.WithMaxThreads(4),
		stack.WithBuckets(1024, 128),
	)
	if err != nil {
		log.Fatalf("stack: %v", err)
	}

	th, err := st.RT.NewThread()
	if err != nil {
		log.Fatalf("thread: %v", err)
	}
	// Committed state: account balances.
	for k := uint64(1); k <= 10; k++ {
		if err := st.Map.Put(th, k, 1000); err != nil {
			log.Fatalf("put: %v", err)
		}
	}

	// A transfer begins: the OCS updates two accounts but the crash
	// lands after the first value store, before its integrity word.
	// (TornUpdate is a test hook exposed by the map precisely to let
	// fault-injection land between the two stores.)
	st.Map.TornUpdate(th, 3, 250)
	fmt.Println("  crash lands mid-critical-section (value written, check word not)")

	// Crash, restart, and bring a new incarnation up through the
	// standard recovery path (heap reopen, Atlas rollback, map attach).
	st.Dev.StopEvictor()
	st2, err := st.CrashReattach(nvm.CrashOptions{RescueFraction: rescue, Seed: 7})
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	fmt.Printf("  recovery: %s\n", st2.Recovery)

	if _, err := st2.Map.Verify(); err != nil {
		if errors.Is(err, hashmap.ErrCorrupt) {
			fmt.Printf("  VERDICT: map corrupt, as expected without Atlas: %v\n", err)
			return
		}
		log.Fatalf("verify: %v", err)
	}
	th2, _ := st2.RT.NewThread()
	v, _, _ := st2.Map.Get(th2, 3)
	fmt.Printf("  VERDICT: map consistent; account 3 = %d (torn update rolled back)\n", v)
}
