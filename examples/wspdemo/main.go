// wspdemo: the Whole System Persistence arithmetic from the paper's
// Section 3 — when does a machine have enough stored energy to rescue
// its volatile state at power-loss time, making a zero-overhead TSP
// design feasible?
//
// The demo evaluates the two-stage rescue (registers+caches -> DRAM on
// PSU residual energy; DRAM -> flash on supercapacitors) for a desktop
// and a large server, sizes the supercap bank the server would need, and
// quantifies the asymmetry the paper leans on: flushing caches to NVM is
// minuscule next to evacuating DRAM through a block-storage path.
//
//	go run ./examples/wspdemo
package main

import (
	"fmt"
	"log"

	"tsp/internal/wsp"
)

func main() {
	rates := wsp.TypicalRates()
	energy := wsp.TypicalEnergy()

	for _, mc := range []struct {
		name string
		m    wsp.Machine
	}{
		{"desktop (4 cores, 8 MB cache, 32 GB DRAM)", wsp.DesktopMachine()},
		{"server (60 cores, 150 MB cache, 1.5 TB DRAM)", wsp.ServerMachine()},
	} {
		res, err := wsp.Evaluate(mc.m, energy, rates)
		if err != nil {
			log.Fatalf("evaluate: %v", err)
		}
		fmt.Printf("== %s ==\n%s\n\n", mc.name, res)
	}

	// Size the supercap bank the server actually needs.
	server := wsp.ServerMachine()
	need := energy
	for need.SupercapJoules = 1000; ; need.SupercapJoules += 1000 {
		res, err := wsp.Evaluate(server, need, rates)
		if err != nil {
			log.Fatalf("evaluate: %v", err)
		}
		if res.Feasible() {
			break
		}
	}
	fmt.Printf("the server becomes WSP-feasible with a %.0f kJ supercapacitor bank\n\n",
		need.SupercapJoules/1000)

	// The Section 2 asymmetry: cache flush vs DRAM-to-disk evacuation.
	cacheFlush, diskEvac, err := wsp.DiskEvacuationComparison(wsp.DesktopMachine(), rates, 200e6)
	if err != nil {
		log.Fatalf("comparison: %v", err)
	}
	fmt.Printf("desktop rescue asymmetry:\n")
	fmt.Printf("  flush CPU caches to (NV)RAM: %v\n", cacheFlush)
	fmt.Printf("  evacuate DRAM to a 200 MB/s disk: %v (%.0fx slower)\n",
		diskEvac, float64(diskEvac)/float64(cacheFlush))
	fmt.Println("\nthis is why emerging NVM rewards procrastination: the just-in-time")
	fmt.Println("rescue is cheap enough to replace every preventive flush on the update path")
}
