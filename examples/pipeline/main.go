// pipeline: a crash-resilient producer/consumer pipeline on the
// lock-free queue — Section 4.1 applied to a second non-blocking
// structure. Producers enqueue work items; consumers dequeue them and
// record results in a lock-free skip list. The machine crashes mid-flow
// under a TSP rescue; the new incarnation finds a valid queue (the
// unprocessed backlog) and a valid result map, and simply resumes where
// the crash left off. No logging, no flushing, no transactions —
// procrastination did all the work.
//
//	go run ./examples/pipeline
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"tsp/internal/lfqueue"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
)

// Root block layout: [queuePtr, resultsPtr].
const (
	rootQueue   = 0
	rootResults = 1
)

func main() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		log.Fatalf("format: %v", err)
	}
	q, err := lfqueue.New(heap)
	if err != nil {
		log.Fatalf("queue: %v", err)
	}
	results, err := skiplist.New(heap, 12)
	if err != nil {
		log.Fatalf("skiplist: %v", err)
	}
	root, err := heap.Alloc(2)
	if err != nil {
		log.Fatalf("alloc: %v", err)
	}
	heap.Store(root, rootQueue, uint64(q.Ptr()))
	heap.Store(root, rootResults, uint64(results.Ptr()))
	heap.SetRoot(root)
	dev.FlushAll()

	// jobBase keys the work items well above any heap word address, so the
	// conservative collector never mistakes a recorded result for a block
	// pointer (false retention is safe but would blur the GC report below).
	const jobBase = 1 << 40
	const jobs = 20000
	var wg sync.WaitGroup
	// Four producers feed the queue...
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < jobs; i += 4 {
				if err := q.Enqueue(jobBase + uint64(i)); err != nil {
					return // crashed
				}
			}
		}(p)
	}
	// ...one consumer processes items into the results map, slower than
	// the producers, so a backlog builds up for the crash to strand.
	for c := 0; c < 1; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				item, err := q.Dequeue()
				if errors.Is(err, lfqueue.ErrEmpty) {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				if err != nil {
					return // crashed
				}
				// "Process": result = item squared, plus some simulated
				// compute so the consumer lags the producers and a
				// backlog accumulates in the queue.
				nvm.Spin(4000)
				if _, err := results.Put(item, item*item); err != nil {
					return
				}
			}
		}()
	}

	// Pull the plug while the pipeline is churning.
	time.Sleep(4 * time.Millisecond)
	dev.CrashRescue()
	wg.Wait()

	// ---- new incarnation ----
	dev.Restart()
	heap2, err := pheap.Open(dev)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	root2 := heap2.Root()
	q2, err := lfqueue.Open(heap2, pheap.Ptr(heap2.Load(root2, rootQueue)))
	if err != nil {
		log.Fatalf("queue reopen: %v", err)
	}
	res2, err := skiplist.Open(heap2, pheap.Ptr(heap2.Load(root2, rootResults)))
	if err != nil {
		log.Fatalf("results reopen: %v", err)
	}
	qrep, err := q2.Verify()
	if err != nil {
		log.Fatalf("queue verify: %v", err)
	}
	if _, err := res2.Verify(); err != nil {
		log.Fatalf("results verify: %v", err)
	}
	q2.RepairTail()
	done := res2.Len()
	fmt.Printf("after crash: %d results durable, %d jobs still queued (%s)\n",
		done, qrep.Elements, qrep)
	fmt.Printf("jobs the producers never got to enqueue: %d (their threads died too)\n",
		jobs-done-qrep.Elements)

	// Resume: drain the backlog single-threadedly.
	backlog, err := q2.Drain()
	if err != nil {
		log.Fatalf("drain: %v", err)
	}
	for _, item := range backlog {
		if _, err := res2.Put(item, item*item); err != nil {
			log.Fatalf("resume put: %v", err)
		}
	}
	fmt.Printf("resumed and processed the %d-job backlog\n", len(backlog))

	// Validate every result that exists. (An item dequeued but not yet
	// recorded at the crash instant is lost in flight — the queue gives
	// at-most-once handoff; applications needing exactly-once layer
	// acknowledgment state on top, exactly as they would on real NVM.)
	bad := 0
	res2.Range(func(k, v uint64) bool {
		if v != k*k {
			bad++
		}
		return true
	})
	fmt.Printf("results recorded: %d, incorrect: %d\n", res2.Len(), bad)
	if bad != 0 {
		log.Fatal("corrupted results found — should be impossible under TSP")
	}

	gcRep, err := heap2.GC()
	if err != nil {
		log.Fatalf("gc: %v", err)
	}
	fmt.Printf("recovery GC reclaimed %d dequeued/stranded nodes\n", gcRep.BlocksFreed)
}
