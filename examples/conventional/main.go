// conventional: what the Section 3 decision procedure prescribes when
// NO timely rescue exists — volatile DRAM, no panic-time flush, no
// standby energy — and how this repository executes that plan.
//
// The demo first asks core.DerivePlan for the mechanism (it answers:
// prevention — synchronous write-through to storage) and then runs it:
// a mutex-based store on a "DRAM" device whose crash rescues nothing,
// with every batch of updates committed through the failure-atomic
// incremental file sync (internal/famsync, the failure-atomic-msync
// mechanism the paper cites). A crash mid-batch loses only the
// uncommitted batch; the reloaded file always holds the last sealed
// commit — and the price is exactly what the paper says prevention
// costs: durable-storage I/O on the update path.
//
//	go run ./examples/conventional
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tsp/internal/atlas"
	"tsp/internal/core"
	"tsp/internal/famsync"
	"tsp/internal/hashmap"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
)

func main() {
	// Step 1: derive the plan for this hardware.
	req := core.Requirements{
		Tolerate:  []core.Failure{core.PowerOutage},
		Isolation: core.MutexBased,
	}
	hw := core.ConventionalDesktop() // DRAM, no energy reserve, has a disk
	plan, err := core.DerivePlan(req, hw)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	fmt.Println("== the decision procedure's verdict for conventional hardware ==")
	fmt.Print(plan)
	fmt.Println()

	// Step 2: execute it. The heap lives on a device whose crash keeps
	// nothing (a power outage on DRAM); durability comes only from the
	// synchronous file commits.
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	heap, err := pheap.Format(dev)
	if err != nil {
		log.Fatalf("format: %v", err)
	}
	rt, err := atlas.New(heap, atlas.ModeOff, atlas.Options{MaxThreads: 2})
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}
	m, err := hashmap.New(rt, 256, 64)
	if err != nil {
		log.Fatalf("map: %v", err)
	}
	heap.SetRoot(m.Ptr())
	dev.FlushAll() // into the device's durable image...

	path := filepath.Join(os.TempDir(), "tsp-conventional-demo.fam")
	defer os.Remove(path)
	sync, err := famsync.Create(dev, path)
	if err != nil {
		log.Fatalf("famsync: %v", err)
	}

	th, err := rt.NewThread()
	if err != nil {
		log.Fatalf("thread: %v", err)
	}
	// Three committed batches...
	for batch := 0; batch < 3; batch++ {
		for k := uint64(0); k < 50; k++ {
			if err := m.Put(th, uint64(batch)*100+k, k); err != nil {
				log.Fatalf("put: %v", err)
			}
		}
		dev.FlushAll() // device image -> then file commit:
		pages, err := sync.Commit()
		if err != nil {
			log.Fatalf("commit: %v", err)
		}
		fmt.Printf("batch %d committed: %d pages written through to storage (gen %d)\n",
			batch, pages, sync.Generation())
	}
	// ...and one batch the power outage interrupts before its commit.
	for k := uint64(900); k < 950; k++ {
		if err := m.Put(th, k, k); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	fmt.Println("power fails before batch 3's commit — DRAM contents gone")
	sync.Close()

	// Step 3: a new machine incarnation reloads from storage.
	dev2 := nvm.NewDevice(nvm.Config{Words: 1 << 16})
	sync2, err := famsync.OpenFile(dev2, path)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	defer sync2.Close()
	heap2, err := pheap.Open(dev2)
	if err != nil {
		log.Fatalf("heap: %v", err)
	}
	rt2, err := atlas.New(heap2, atlas.ModeOff, atlas.Options{MaxThreads: 2})
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}
	m2, err := hashmap.Open(rt2, heap2.Root())
	if err != nil {
		log.Fatalf("map: %v", err)
	}
	if _, err := m2.Verify(); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("reloaded from %s: %d entries (the three committed batches), generation %d\n",
		path, m2.Len(), sync2.Generation())
	if m2.Len() != 150 {
		log.Fatalf("expected exactly the 150 committed entries, got %d", m2.Len())
	}
	fmt.Println("the uncommitted batch is gone — and that is the contract: prevention")
	fmt.Println("pays sync-I/O on every commit; procrastination (TSP) would have saved it")
}
