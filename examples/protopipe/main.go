// protopipe: the wire codec's client side, on the proto package's
// exported surface. An in-process cache server is driven over real TCP
// by two clients sharing one store: a native-protocol client that
// pipelines a whole burst of requests into a single write (one round
// trip for the lot — the network-layer analogue of the paper's
// batched critical sections), and a RESP client speaking the framing
// redis-cli uses. Both render requests with Adapter.AppendRequest, so
// neither hand-formats a single wire byte.
//
//	go run ./examples/protopipe
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"

	"tsp/internal/cacheserver"
	"tsp/internal/proto"
)

func main() {
	srv, err := cacheserver.New(cacheserver.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()

	// --- native client: one pipelined burst, one write, one round trip.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	na := proto.Native{}
	var buf []byte
	burst := []proto.Request{
		{Cmd: proto.CmdMSet, KV: []uint64{1, 100, 2, 200, 3, 300}},
		{Cmd: proto.CmdIncr, KV: []uint64{1, 11}},
		{Cmd: proto.CmdCrash},
		{Cmd: proto.CmdMGet, KV: []uint64{1, 2, 3}},
	}
	for i := range burst {
		buf = na.AppendRequest(buf, &burst[i])
	}
	if _, err := conn.Write(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("native burst (4 requests, 1 write):")
	// Replies: STORED 3, the incr result, OK RECOVERED EPOCH <p> (the
	// recovered durability frontier, DESIGN.md §11), then the mget's
	// VALUE lines up to END — 3 single-line replies plus a multi-line one.
	for single := 0; single < 3; single++ {
		line, err := r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", strings.TrimSpace(line))
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", strings.TrimSpace(line))
		if strings.TrimSpace(line) == "END" {
			break
		}
	}

	// --- RESP client: same store, redis framing, sniffed from the
	// first byte of the connection.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)

	re := proto.RESP{}
	buf = buf[:0]
	get := proto.Request{Cmd: proto.CmdGet, KV: []uint64{1}}
	ping := proto.Request{Cmd: proto.CmdPing}
	buf = re.AppendRequest(buf, &get)
	buf = re.AppendRequest(buf, &ping)
	if _, err := conn2.Write(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("RESP pipeline (GET 1, PING):")
	// $-header + body line for the bulk reply, then +PONG.
	for i := 0; i < 3; i++ {
		line, err := r2.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", strings.TrimSpace(line))
	}
	fmt.Println("same store, two protocols, zero hand-formatted bytes — value 111 survived the crash")
}
