// Quickstart: the persistent-heap programming model on simulated NVM.
//
// The program builds a small linked list in a persistent heap, anchors
// it at the heap root, crashes the machine mid-update under a Timely
// Sufficient Persistence rescue, and then plays the recovery observer:
// a fresh incarnation reopens the heap from its root and finds every
// store issued before the crash.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tsp/internal/pheap"
	"tsp/internal/stack"
)

// Node layout in the persistent heap: [next, value].
const (
	nodeNext  = 0
	nodeValue = 1
)

func main() {
	// A heap-only stack on a 64 K-word (512 KB) simulated NVM device.
	// Stores land in the volatile image (CPU cache/DRAM); only flushed
	// or rescued lines reach the persisted image a crash leaves behind.
	st, err := stack.New(stack.HeapOnly(), stack.WithDeviceWords(1<<16))
	if err != nil {
		log.Fatalf("format heap: %v", err)
	}
	dev, heap := st.Dev, st.Heap

	// Build a 5-node list. Persistent pointers are stable word offsets,
	// so no pointer swizzling is ever needed across incarnations.
	var head pheap.Ptr
	for i := uint64(1); i <= 5; i++ {
		n, err := heap.Alloc(2)
		if err != nil {
			log.Fatalf("alloc: %v", err)
		}
		heap.Store(n, nodeNext, uint64(head))
		heap.Store(n, nodeValue, i*100)
		head = n
	}
	// Publishing the root is the single-word commit point.
	heap.SetRoot(head)

	// A stranded allocation: the crash will land before this node is
	// linked anywhere. Recovery's conservative GC must reclaim it.
	if _, err := heap.Alloc(2); err != nil {
		log.Fatalf("alloc: %v", err)
	}

	fmt.Println("before crash: list built, root published, one block leaked")
	fmt.Printf("  dirty lines not yet durable: %d\n", dev.DirtyLines())

	// Crash with a TSP rescue: every issued store becomes durable, with
	// zero flushing during the run above.
	dev.CrashRescue()
	dev.Restart()

	// ---- new incarnation: the recovery observer ----
	st2, err := stack.Reattach(dev, stack.HeapOnly())
	if err != nil {
		log.Fatalf("reopen heap: %v", err)
	}
	heap2 := st2.Heap
	fmt.Println("\nafter crash + TSP rescue:")
	for p := heap2.Root(); !p.IsNil(); p = pheap.Ptr(heap2.Load(p, nodeNext)) {
		fmt.Printf("  node %4d: value %d\n", p, heap2.Load(p, nodeValue))
	}

	// Recovery-time GC reclaims the stranded block.
	rep, err := heap2.GC()
	if err != nil {
		log.Fatalf("gc: %v", err)
	}
	fmt.Printf("\nrecovery GC: %d block(s) reclaimed (the stranded allocation), %d kept\n",
		rep.BlocksFreed, rep.BlocksMarked)

	if chk, err := heap2.Check(); err != nil {
		log.Fatalf("heap check: %v", err)
	} else {
		fmt.Printf("heap check: %s\n", chk)
	}
}
