// bank: failure-atomic multi-key transactions for (almost) free — the
// payoff of building on the paper's Section 4.2 machinery. Accounts live
// in a transactional KV store (internal/txkv) whose transactions are
// just Atlas outermost critical sections spanning several stripe locks;
// under TSP, crash-atomicity of whole transfers costs nothing beyond the
// undo logging Atlas already does.
//
// Four tellers run random transfers; the machine crashes mid-flight with
// a TSP rescue; recovery rolls back the in-flight transfers and the
// invariant — total money is conserved — holds exactly.
//
//	go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/txkv"
)

const (
	accounts = 64
	initial  = 10_000
)

func main() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		log.Fatalf("format: %v", err)
	}
	rt, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 8})
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}
	bank, err := txkv.New(rt, 512, 32)
	if err != nil {
		log.Fatalf("txkv: %v", err)
	}
	heap.SetRoot(bank.Ptr())

	// Open the accounts in one big transaction.
	teller0, err := rt.NewThread()
	if err != nil {
		log.Fatalf("thread: %v", err)
	}
	keys := make([]uint64, accounts)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := bank.Update(teller0, keys, func(tx *txkv.Txn) error {
		for _, k := range keys {
			if err := tx.Put(k, initial); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatalf("setup: %v", err)
	}
	dev.FlushAll()
	fmt.Printf("bank open: %d accounts x %d = %d total\n", accounts, initial, accounts*initial)

	// Tellers transfer at random until the crash.
	var transfers, aborts uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	insufficient := errors.New("insufficient funds")
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := rt.NewThread()
			if err != nil {
				return
			}
			rng := rand.New(rand.NewSource(int64(g) + 42))
			for !dev.Crashed() {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(500) + 1)
				err := bank.Update(th, []uint64{from, to}, func(tx *txkv.Txn) error {
					balance, _, err := tx.Get(from)
					if err != nil {
						return err
					}
					if balance < amount {
						return insufficient
					}
					if err := tx.Put(from, balance-amount); err != nil {
						return err
					}
					_, err = tx.Add(to, amount)
					return err
				})
				mu.Lock()
				if err == nil {
					transfers++
				} else if errors.Is(err, insufficient) {
					aborts++
				}
				mu.Unlock()
			}
		}(g)
	}

	time.Sleep(15 * time.Millisecond)
	dev.CrashRescue() // the power fails mid-transfer; TSP rescues the cache
	wg.Wait()
	fmt.Printf("crash after ~%d transfers (%d aborted for insufficient funds)\n", transfers, aborts)

	// New incarnation: recover and audit.
	dev.Restart()
	heap2, err := pheap.Open(dev)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	rep, err := atlas.Recover(heap2)
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	fmt.Printf("recovery: %s\n", rep)
	rt2, err := atlas.New(heap2, atlas.ModeTSP, atlas.Options{MaxThreads: 8})
	if err != nil {
		log.Fatalf("atlas: %v", err)
	}
	bank2, err := txkv.Open(rt2, heap2.Root())
	if err != nil {
		log.Fatalf("txkv: %v", err)
	}
	if _, err := bank2.Map().Verify(); err != nil {
		log.Fatalf("verify: %v", err)
	}
	var total uint64
	n := 0
	bank2.Map().Range(func(_, v uint64) bool { total += v; n++; return true })
	fmt.Printf("audit: %d accounts, total = %d\n", n, total)
	if total != accounts*initial || n != accounts {
		log.Fatalf("MONEY NOT CONSERVED: %d != %d", total, accounts*initial)
	}
	fmt.Println("every in-flight transfer was rolled back whole: not a cent lost or created")
}
