// nonblocking: the Section 4.1 case study — a lock-free skip list that
// gains crash resilience from Timely Sufficient Persistence alone, with
// zero added code and zero runtime overhead.
//
// Eight goroutines hammer the list; the machine crashes at an arbitrary
// instant with a TSP rescue; a fresh incarnation traverses from the heap
// root and finds a structurally valid, consistent map. The demo also
// persists the post-crash image to a real file and reloads it, so the
// recovery truly spans a (simulated) process lifetime.
//
//	go run ./examples/nonblocking
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tsp/internal/nvm"
	"tsp/internal/persist"
	"tsp/internal/pheap"
	"tsp/internal/skiplist"
)

func main() {
	dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	heap, err := pheap.Format(dev)
	if err != nil {
		log.Fatalf("format: %v", err)
	}
	list, err := skiplist.New(heap, 16)
	if err != nil {
		log.Fatalf("skiplist: %v", err)
	}
	heap.SetRoot(list.Ptr())
	dev.FlushAll()

	// Eight workers insert and increment concurrently. Note there is no
	// logging, no flushing, no transactional machinery anywhere below.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(g*100000 + i%5000)
				if _, err := list.Inc(k, 1); err != nil {
					if errors.Is(err, skiplist.ErrCrashed) {
						return // this thread just "died" in the crash
					}
					log.Fatalf("inc: %v", err)
				}
			}
		}(g)
	}

	// Let the workload run hot, then pull the plug mid-flight.
	time.Sleep(50 * time.Millisecond)
	dev.CrashRescue()
	close(stop)
	wg.Wait()
	fmt.Println("crashed mid-workload with a TSP rescue (no flushes were ever issued)")

	// Persist the durable image to a real file and reload it into a
	// brand-new device: recovery across an actual process boundary.
	path := filepath.Join(os.TempDir(), "tsp-nonblocking-demo.snap")
	if err := persist.Save(dev, path); err != nil {
		log.Fatalf("save: %v", err)
	}
	defer os.Remove(path)
	dev2 := nvm.NewDevice(nvm.Config{Words: 1 << 20})
	if err := persist.Load(dev2, path); err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("durable image saved to and reloaded from %s\n", path)

	// The recovery observer: open the heap, attach to the list via the
	// root, verify structure, count everything.
	heap2, err := pheap.Open(dev2)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	list2, err := skiplist.Open(heap2, heap2.Root())
	if err != nil {
		log.Fatalf("skiplist reopen: %v", err)
	}
	rep, err := list2.Verify()
	if err != nil {
		log.Fatalf("VERIFY FAILED (this should be impossible under TSP): %v", err)
	}
	var totalIncs uint64
	list2.Range(func(_, v uint64) bool { totalIncs += v; return true })
	fmt.Printf("recovered list verifies clean: %s\n", rep)
	fmt.Printf("total increments preserved: %d across %d keys\n", totalIncs, list2.Len())

	// Recovery-time GC reclaims nodes whose insertion never linked.
	gcRep, err := heap2.GC()
	if err != nil {
		log.Fatalf("gc: %v", err)
	}
	fmt.Printf("recovery GC: %d stranded block(s) reclaimed\n", gcRep.BlocksFreed)
}
