// Package tsp's root benchmark harness regenerates every quantitative
// result in the paper's evaluation (Section 5), plus the ablations
// DESIGN.md calls out. Each benchmark reports the paper's metric —
// worker iterations per second (Miter/s; each iteration performs three
// atomic map operations) — via b.ReportMetric, alongside the usual
// ns/op.
//
// Mapping to the paper:
//
//	BenchmarkTable1            — Table 1, all four variants x both platforms
//	BenchmarkFaultInjection    — Section 5.2's crash campaign (consistency rate)
//	BenchmarkAblationFlushLatency — where log+flush diverges from log-only
//	BenchmarkAblationThreads   — thread scaling of all four variants
//	BenchmarkAblationLockGrain — bucket-per-mutex striping sweep
//	BenchmarkAblationLogDedup  — Atlas first-store filter on/off
//	BenchmarkAblationWriteHeavy — write-heavy OCSes (the 3x/5x regime of [3])
//	BenchmarkRecovery          — recovery latency vs in-flight log volume
//
// Run everything:  go test -bench=. -benchmem
package tsp_test

import (
	"fmt"
	"testing"
	"time"

	"tsp/internal/atlas"
	"tsp/internal/harness"
	"tsp/internal/nvm"
	"tsp/internal/pheap"
	"tsp/internal/platform"
)

// benchWindow is the measurement window per cell. Long enough to settle,
// short enough that the full suite stays tractable.
const benchWindow = 500 * time.Millisecond

// runThroughputBench measures one harness configuration and reports the
// Table-1 metric.
func runThroughputBench(b *testing.B, cfg harness.Config) harness.ThroughputResult {
	b.Helper()
	cfg.Duration = benchWindow
	var last harness.ThroughputResult
	for i := 0; i < b.N; i++ {
		res, err := harness.RunThroughput(cfg)
		if err != nil {
			b.Fatalf("RunThroughput: %v", err)
		}
		last = res
	}
	b.ReportMetric(last.IterPerSec()/1e6, "Miter/s")
	return last
}

// BenchmarkTable1 regenerates Table 1: the four variants on the desktop
// and server platform profiles.
func BenchmarkTable1(b *testing.B) {
	for _, prof := range platform.All() {
		for _, v := range harness.AllVariants() {
			b.Run(fmt.Sprintf("%s/%s", prof.Name, v), func(b *testing.B) {
				cfg := harness.Config{Variant: v, Seed: 1}.FromProfile(prof)
				runThroughputBench(b, cfg)
			})
		}
	}
}

// BenchmarkFaultInjection regenerates the Section 5.2 result: crashes at
// random instants, each followed by recovery and invariant verification.
// The reported metric is the fraction of runs that recovered to a
// consistent state — the paper's result is 1.0 for every fortified
// configuration under its intended failure/rescue pairing.
func BenchmarkFaultInjection(b *testing.B) {
	scenarios := []struct {
		name    string
		variant harness.Variant
		rescue  float64
	}{
		{"non-blocking/rescue", harness.NonBlocking, 1},
		{"log-only/rescue", harness.MutexAtlasTSP, 1},
		{"log+flush/rescue", harness.MutexAtlasNonTSP, 1},
		{"log+flush/no-rescue", harness.MutexAtlasNonTSP, 0},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			cfg := harness.Config{
				Variant:     sc.variant,
				Threads:     4,
				HighKeys:    1 << 10,
				Buckets:     1 << 10,
				DeviceWords: 1 << 21,
			}
			opts := harness.CrashOptions{
				RescueFraction: sc.rescue,
				MinRun:         time.Millisecond,
				MaxRun:         5 * time.Millisecond,
			}
			consistent := 0
			total := 0
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i)
				res, err := harness.RunCrash(cfg, opts)
				if err != nil {
					b.Fatalf("RunCrash: %v", err)
				}
				total++
				if res.OK() {
					consistent++
				}
			}
			if consistent != total {
				b.Fatalf("only %d/%d crashes recovered consistently", consistent, total)
			}
			b.ReportMetric(float64(consistent)/float64(total), "consistent-frac")
		})
	}
}

// BenchmarkAblationFlushLatency sweeps the simulated cache-line flush
// cost: log-only throughput must stay flat (it never flushes on the
// critical path) while log+flush degrades — the mechanism behind the
// paper's TSP-vs-non-TSP gap.
func BenchmarkAblationFlushLatency(b *testing.B) {
	prof := platform.Desktop()
	for _, flushCost := range []int{0, 8, 32, 128, 512} {
		for _, v := range []harness.Variant{harness.MutexAtlasTSP, harness.MutexAtlasNonTSP} {
			b.Run(fmt.Sprintf("flush=%d/%s", flushCost, v), func(b *testing.B) {
				cfg := harness.Config{Variant: v, Seed: 1}.FromProfile(prof)
				cfg.FlushCost = flushCost
				runThroughputBench(b, cfg)
			})
		}
	}
}

// BenchmarkAblationThreads scales the worker count for all four
// variants.
func BenchmarkAblationThreads(b *testing.B) {
	prof := platform.Desktop()
	for _, threads := range []int{1, 2, 4, 8, 16} {
		for _, v := range harness.AllVariants() {
			b.Run(fmt.Sprintf("t=%d/%s", threads, v), func(b *testing.B) {
				cfg := harness.Config{Variant: v, Seed: 1}.FromProfile(prof)
				cfg.Threads = threads
				runThroughputBench(b, cfg)
			})
		}
	}
}

// BenchmarkAblationLockGrain sweeps the paper's "one mutex per 1000
// buckets" striping decision on the unfortified map.
func BenchmarkAblationLockGrain(b *testing.B) {
	prof := platform.Desktop()
	for _, grain := range []int{1, 10, 100, 1000, 10000, 131072} {
		b.Run(fmt.Sprintf("bucketsPerMutex=%d", grain), func(b *testing.B) {
			cfg := harness.Config{Variant: harness.MutexNoAtlas, Seed: 1}.FromProfile(prof)
			cfg.BucketsPerMutex = grain
			runThroughputBench(b, cfg)
		})
	}
}

// BenchmarkAblationLogDedup measures what Atlas's first-store-per-OCS
// filter buys by disabling it. The Table-1 workload stores each location
// at most once per OCS (the filter never fires there), so this ablation
// uses OCSes that repeatedly update a handful of hot words — the pattern
// the filter exists for (e.g. a counter bumped many times inside one
// critical section).
func BenchmarkAblationLogDedup(b *testing.B) {
	const hotWords, storesPerOCS = 4, 32
	for _, every := range []bool{false, true} {
		name := "first-store-filter"
		if every {
			name = "log-every-store"
		}
		b.Run(name, func(b *testing.B) {
			dev := nvm.NewDevice(nvm.Config{Words: 1 << 20, MissCost: 560})
			heap, err := pheap.Format(dev)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{
				MaxThreads: 1, LogEntries: 1 << 10, LogEveryStore: every,
			})
			if err != nil {
				b.Fatal(err)
			}
			region, err := heap.Alloc(hotWords)
			if err != nil {
				b.Fatal(err)
			}
			heap.SetRoot(region)
			th, err := rt.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			m := rt.NewMutex()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Lock(m)
				for s := 0; s < storesPerOCS; s++ {
					th.Store(region.Addr()+nvm.Addr(s%hotWords), uint64(i+s))
				}
				th.Unlock(m)
			}
		})
	}
}

// BenchmarkAblationWriteHeavy reproduces the regime of the paper's
// previously published Atlas measurements (3x overhead from logging
// alone, 5x with flushing, on write-heavy applications): each OCS writes
// a burst of distinct words, so logging dominates the op.
func BenchmarkAblationWriteHeavy(b *testing.B) {
	const storesPerOCS = 16
	for _, mode := range []atlas.Mode{atlas.ModeOff, atlas.ModeTSP, atlas.ModeNonTSP} {
		b.Run(mode.String(), func(b *testing.B) {
			dev := nvm.NewDevice(nvm.Config{Words: 1 << 20, FlushCost: 18, MissCost: 560})
			heap, err := pheap.Format(dev)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := atlas.New(heap, mode, atlas.Options{MaxThreads: 1})
			if err != nil {
				b.Fatal(err)
			}
			region, err := heap.Alloc(1 << 16)
			if err != nil {
				b.Fatal(err)
			}
			heap.SetRoot(region)
			th, err := rt.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			m := rt.NewMutex()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Lock(m)
				base := region.Addr() + nvm.Addr((i*storesPerOCS)%(1<<15))
				for w := nvm.Addr(0); w < storesPerOCS; w++ {
					th.Store(base+w, uint64(i))
				}
				th.Unlock(m)
			}
		})
	}
}

// BenchmarkRecovery measures recovery latency as a function of how much
// in-flight log the crash left behind (incomplete OCS size).
func BenchmarkRecovery(b *testing.B) {
	for _, storesInFlight := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("inflight=%d", storesInFlight), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := nvm.NewDevice(nvm.Config{Words: 1 << 20})
				heap, err := pheap.Format(dev)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := atlas.New(heap, atlas.ModeTSP, atlas.Options{MaxThreads: 1})
				if err != nil {
					b.Fatal(err)
				}
				region, err := heap.Alloc(1 << 12)
				if err != nil {
					b.Fatal(err)
				}
				heap.SetRoot(region)
				th, err := rt.NewThread()
				if err != nil {
					b.Fatal(err)
				}
				m := rt.NewMutex()
				th.Lock(m)
				for w := 0; w < storesInFlight; w++ {
					th.Store(region.Addr()+nvm.Addr(w), uint64(w)+1)
				}
				dev.CrashRescue()
				dev.Restart()
				heap2, err := pheap.Open(dev)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := atlas.Recover(heap2)
				if err != nil {
					b.Fatal(err)
				}
				if rep.UndoApplied != storesInFlight {
					b.Fatalf("undo applied = %d, want %d", rep.UndoApplied, storesInFlight)
				}
			}
		})
	}
}
