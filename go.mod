module tsp

go 1.22
